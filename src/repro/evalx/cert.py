"""CERT advisory corpus 2000-2003 and the Figure 1 breakdown.

The paper: "We analyze the 107 CERT advisories from 2000 through 2003 ...
These categories collectively account for 67% of the advisories."

CERT/CC published 123 advisories in 2000-2003 (CA-2000-01 .. CA-2003-28).
The paper analyzes 107 of them -- the vulnerability advisories; worm
*activity* reports and trojaned-distribution notices that re-announce an
already-counted vulnerability are excluded.  This module embeds the full
list, reconstructed from the public advisory titles, with one of the
paper's vulnerability classes per advisory:

``buffer-overflow`` | ``format-string`` | ``integer-overflow`` |
``heap-corruption`` (incl. double free) | ``globbing`` | ``others``

and an ``analyzed`` flag marking the 107-advisory subset.  The class labels
of the famous advisories are ground truth (Code Red = IIS buffer overflow,
CA-2002-07 = zlib double free, CA-2001-07 = FTP globbing, ...); the long
tail is classified from the titles.  The reproduction target is Figure 1's
*shape*: the five memory-corruption classes together cover ~67%, with
stack buffer overflow dominating.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

# The five memory-corruption classes of Figure 1, plus "others".
BUFFER_OVERFLOW = "buffer-overflow"
FORMAT_STRING = "format-string"
INTEGER_OVERFLOW = "integer-overflow"
HEAP_CORRUPTION = "heap-corruption"
GLOBBING = "globbing"
OTHERS = "others"

MEMORY_CORRUPTION_CLASSES = (
    BUFFER_OVERFLOW,
    FORMAT_STRING,
    INTEGER_OVERFLOW,
    HEAP_CORRUPTION,
    GLOBBING,
)


@dataclass(frozen=True)
class Advisory:
    """One CERT advisory with its vulnerability class."""

    advisory_id: str
    title: str
    category: str
    analyzed: bool = True  # False: worm-activity / re-announcement reports


def _a(aid: str, title: str, cat: str, analyzed: bool = True) -> Advisory:
    return Advisory(aid, title, cat, analyzed)


#: The reconstructed 2000-2003 corpus.
ADVISORIES: List[Advisory] = [
    # ---- 2000 -----------------------------------------------------------
    _a("CA-2000-01", "Denial-of-Service Developments", OTHERS),
    _a("CA-2000-02", "Malicious HTML Tags Embedded in Client Web Requests", OTHERS),
    _a("CA-2000-03", "Continuing Compromises of DNS Servers (BIND NXT overflow)", BUFFER_OVERFLOW),
    _a("CA-2000-04", "Love Letter Worm", OTHERS, analyzed=False),
    _a("CA-2000-05", "Netscape Navigator Improperly Validates SSL Sessions", OTHERS),
    _a("CA-2000-06", "Multiple Buffer Overflows in Kerberos Authenticated Services", BUFFER_OVERFLOW),
    _a("CA-2000-07", "Microsoft Office 2000 UA ActiveX Control Incorrectly Marked Safe", OTHERS),
    _a("CA-2000-08", "Inconsistent Warning Messages in Netscape Navigator", OTHERS),
    _a("CA-2000-09", "Flaw in PGP 5.0 Key Generation", OTHERS),
    _a("CA-2000-10", "Inconsistent Warning Messages in Internet Explorer", OTHERS),
    _a("CA-2000-11", "MIT Kerberos Vulnerable to Denial-of-Service Attacks", OTHERS),
    _a("CA-2000-12", "HHControl Object (ShowHelp) Vulnerability", OTHERS),
    _a("CA-2000-13", "Two Input Validation Problems in FTPD (SITE EXEC format string)", FORMAT_STRING),
    _a("CA-2000-14", "Microsoft Outlook and Outlook Express Cache Bypass", OTHERS),
    _a("CA-2000-15", "Netscape Allows Java Applets to Read Protected Resources", OTHERS),
    _a("CA-2000-16", "Microsoft 'IE Script' and 'Office 2000 HTML' Vulnerabilities", OTHERS),
    _a("CA-2000-17", "Input Validation Problem in rpc.statd (format string)", FORMAT_STRING),
    _a("CA-2000-18", "PGP May Encrypt Data With Expired ADKs", OTHERS),
    _a("CA-2000-19", "Revocation of Sun Microsystems Browser Certificates", OTHERS),
    _a("CA-2000-20", "IOS Web Server Vulnerability", OTHERS),
    _a("CA-2000-21", "Denial-of-Service Vulnerabilities in TCP/IP Stacks", OTHERS),
    _a("CA-2000-22", "Input Validation Problems in LPRng (format string)", FORMAT_STRING),
    # ---- 2001 -----------------------------------------------------------
    _a("CA-2001-01", "Interbase Server Contains Compiled-in Back Door Account", OTHERS),
    _a("CA-2001-02", "Multiple Vulnerabilities in BIND (TSIG buffer overflow)", BUFFER_OVERFLOW),
    _a("CA-2001-03", "VBS/OnTheFly (Anna Kournikova) Malicious Code", OTHERS, analyzed=False),
    _a("CA-2001-04", "Unauthentic Microsoft Corporation Certificates", OTHERS),
    _a("CA-2001-05", "Exploitation of snmpXdmid (buffer overflow)", BUFFER_OVERFLOW),
    _a("CA-2001-06", "Automatic Execution of Embedded MIME Types", OTHERS),
    _a("CA-2001-07", "File Globbing Vulnerabilities in Various FTP Servers", GLOBBING),
    _a("CA-2001-08", "Multiple Vulnerabilities in Alcatel ADSL Modems", OTHERS),
    _a("CA-2001-09", "Statistical Weaknesses in TCP/IP Initial Sequence Numbers", OTHERS),
    _a("CA-2001-10", "Buffer Overflow Vulnerability in Microsoft IIS 5.0", BUFFER_OVERFLOW),
    _a("CA-2001-11", "sadmind/IIS Worm (buffer overflow exploitation)", BUFFER_OVERFLOW),
    _a("CA-2001-12", "Superfluous Decoding Vulnerability in IIS", OTHERS),
    _a("CA-2001-13", "Buffer Overflow in IIS Indexing Service DLL (Code Red vector)", BUFFER_OVERFLOW),
    _a("CA-2001-14", "Cisco IOS HTTP Server Authentication Bypass", OTHERS),
    _a("CA-2001-15", "Buffer Overflow in Sun Solaris in.lpd Print Daemon", BUFFER_OVERFLOW),
    _a("CA-2001-16", "Oracle 8i Contains Buffer Overflow in TNS Listener", BUFFER_OVERFLOW),
    _a("CA-2001-17", "Check Point RDP Bypass Vulnerability", OTHERS),
    _a("CA-2001-18", "Multiple Vulnerabilities in Several IMAP Servers", BUFFER_OVERFLOW),
    _a("CA-2001-19", "Code Red Worm Exploiting Buffer Overflow in IIS", BUFFER_OVERFLOW, analyzed=False),
    _a("CA-2001-20", "Continuing Threats to Home Users", OTHERS, analyzed=False),
    _a("CA-2001-21", "Buffer Overflow in telnetd", BUFFER_OVERFLOW),
    _a("CA-2001-22", "W32/Sircam Malicious Code", OTHERS, analyzed=False),
    _a("CA-2001-23", "Continued Threat of the Code Red Worm", BUFFER_OVERFLOW, analyzed=False),
    _a("CA-2001-24", "Vulnerability in OpenView and NetView (buffer overflow)", BUFFER_OVERFLOW),
    _a("CA-2001-25", "Buffer Overflow in Gauntlet Firewall", BUFFER_OVERFLOW),
    _a("CA-2001-26", "Nimda Worm", BUFFER_OVERFLOW, analyzed=False),
    _a("CA-2001-27", "Format String Vulnerability in CDE ToolTalk", FORMAT_STRING),
    _a("CA-2001-28", "Automatic Execution of Macros", OTHERS),
    _a("CA-2001-29", "Oracle9iAS Web Cache Vulnerable to Buffer Overflow", BUFFER_OVERFLOW),
    _a("CA-2001-30", "Multiple Vulnerabilities in lpd (buffer overflows)", BUFFER_OVERFLOW),
    _a("CA-2001-31", "Buffer Overflow in CDE Subprocess Control Service", BUFFER_OVERFLOW),
    _a("CA-2001-32", "HP-UX Line Printer Daemon Vulnerable to Directory Traversal", OTHERS),
    _a("CA-2001-33", "Multiple Vulnerabilities in WU-FTPD (globbing heap corruption)", GLOBBING),
    _a("CA-2001-34", "Buffer Overflow in System V Derived Login", BUFFER_OVERFLOW),
    _a("CA-2001-35", "Recent Activity Against Secure Shell Daemons (CRC32 integer overflow)", INTEGER_OVERFLOW),
    _a("CA-2001-36", "Microsoft Internet Explorer HTML Directive Vulnerability", OTHERS),
    _a("CA-2001-37", "Buffer Overflow in UPnP Service on Microsoft Windows", BUFFER_OVERFLOW),
    # ---- 2002 -----------------------------------------------------------
    _a("CA-2002-01", "Exploitation of Vulnerability in CDE Subprocess Control Service", BUFFER_OVERFLOW),
    _a("CA-2002-02", "Buffer Overflow in AOL ICQ", BUFFER_OVERFLOW),
    _a("CA-2002-03", "Multiple Vulnerabilities in SNMP Implementations (PROTOS overflows)", BUFFER_OVERFLOW),
    _a("CA-2002-04", "Buffer Overflow in Microsoft Internet Explorer", BUFFER_OVERFLOW),
    _a("CA-2002-05", "Heap Overflow in PHP POST File-Upload Handling", HEAP_CORRUPTION),
    _a("CA-2002-06", "Vulnerabilities in Various Implementations of RADIUS", BUFFER_OVERFLOW),
    _a("CA-2002-07", "Double Free Bug in zlib Compression Library", HEAP_CORRUPTION),
    _a("CA-2002-08", "Multiple Vulnerabilities in Oracle Servers", OTHERS),
    _a("CA-2002-09", "Multiple Vulnerabilities in Microsoft IIS", BUFFER_OVERFLOW),
    _a("CA-2002-10", "Format String Vulnerability in rpc.rwalld", FORMAT_STRING),
    _a("CA-2002-11", "Heap Overflow in Cachefs Daemon (cachefsd)", HEAP_CORRUPTION),
    _a("CA-2002-12", "Format String Vulnerability in ISC DHCPD", FORMAT_STRING),
    _a("CA-2002-13", "Buffer Overflow in Microsoft's MSN Chat ActiveX Control", BUFFER_OVERFLOW),
    _a("CA-2002-14", "Buffer Overflow in Macromedia JRun", BUFFER_OVERFLOW),
    _a("CA-2002-15", "Denial-of-Service Vulnerability in ISC BIND 9", OTHERS),
    _a("CA-2002-16", "Multiple Vulnerabilities in Yahoo! Messenger", BUFFER_OVERFLOW),
    _a("CA-2002-17", "Apache Web Server Chunk Handling Vulnerability (integer overflow)", INTEGER_OVERFLOW),
    _a("CA-2002-18", "OpenSSH Vulnerabilities in Challenge Response Handling (integer overflow)", INTEGER_OVERFLOW),
    _a("CA-2002-19", "Buffer Overflows in Multiple DNS Resolver Libraries", BUFFER_OVERFLOW),
    _a("CA-2002-20", "Multiple Vulnerabilities in CDE ToolTalk", OTHERS),
    _a("CA-2002-21", "Vulnerability in PHP (malformed POST abort)", OTHERS),
    _a("CA-2002-22", "Multiple Vulnerabilities in Microsoft SQL Server", BUFFER_OVERFLOW),
    _a("CA-2002-23", "Multiple Vulnerabilities in OpenSSL (buffer overflows)", BUFFER_OVERFLOW),
    _a("CA-2002-24", "Trojan Horse OpenSSH Distribution", OTHERS, analyzed=False),
    _a("CA-2002-25", "Integer Overflow in XDR Library", INTEGER_OVERFLOW),
    _a("CA-2002-26", "Buffer Overflow in CDE ToolTalk", BUFFER_OVERFLOW),
    _a("CA-2002-27", "Apache/mod_ssl Worm (Slapper, OpenSSL overflow)", BUFFER_OVERFLOW, analyzed=False),
    _a("CA-2002-28", "Trojan Horse Sendmail Distribution", OTHERS, analyzed=False),
    _a("CA-2002-29", "Buffer Overflow in Kerberos Administration Daemon", BUFFER_OVERFLOW),
    _a("CA-2002-30", "Trojan Horse tcpdump and libpcap Distributions", OTHERS, analyzed=False),
    _a("CA-2002-31", "Multiple Vulnerabilities in BIND", BUFFER_OVERFLOW),
    _a("CA-2002-32", "Backdoor in Alcatel OmniSwitch AOS", OTHERS),
    _a("CA-2002-33", "Heap Overflow Vulnerability in Microsoft Data Access Components", HEAP_CORRUPTION),
    _a("CA-2002-34", "Buffer Overflow in Solaris X Window Font Service", BUFFER_OVERFLOW),
    _a("CA-2002-35", "Vulnerability in RaQ4 Servers", OTHERS),
    _a("CA-2002-36", "Multiple Vulnerabilities in SSH Implementations", BUFFER_OVERFLOW),
    # ---- 2003 -----------------------------------------------------------
    _a("CA-2003-01", "Buffer Overflows in ISC DHCPD Minires Library", BUFFER_OVERFLOW),
    _a("CA-2003-02", "Double-Free Bug in CVS Server", HEAP_CORRUPTION),
    _a("CA-2003-03", "Buffer Overflow in Windows Locator Service", BUFFER_OVERFLOW),
    _a("CA-2003-04", "MS-SQL Server Worm (Slammer)", BUFFER_OVERFLOW, analyzed=False),
    _a("CA-2003-05", "Multiple Vulnerabilities in BIND (resolver overflows)", BUFFER_OVERFLOW),
    _a("CA-2003-06", "Multiple Vulnerabilities in Implementations of SIP (PROTOS overflows)", BUFFER_OVERFLOW),
    _a("CA-2003-07", "Remote Buffer Overflow in Sendmail", BUFFER_OVERFLOW),
    _a("CA-2003-08", "Increased Activity Targeting Windows Shares", OTHERS, analyzed=False),
    _a("CA-2003-09", "Buffer Overflow in Core Microsoft Windows DLL", BUFFER_OVERFLOW),
    _a("CA-2003-10", "Integer Overflow in Sun RPC XDR Library Routines", INTEGER_OVERFLOW),
    _a("CA-2003-11", "Multiple Vulnerabilities in Lotus Notes and Domino", BUFFER_OVERFLOW),
    _a("CA-2003-12", "Buffer Overflow in Sendmail (address parsing)", BUFFER_OVERFLOW),
    _a("CA-2003-13", "Multiple Vulnerabilities in Snort Preprocessors (heap overflow)", HEAP_CORRUPTION),
    _a("CA-2003-14", "Buffer Overflow in Microsoft Windows HTML Conversion Library", BUFFER_OVERFLOW),
    _a("CA-2003-15", "Cisco IOS Interface Blocked by IPv4 Packets", OTHERS),
    _a("CA-2003-16", "Buffer Overflow in Microsoft RPC (Blaster vector)", BUFFER_OVERFLOW),
    _a("CA-2003-17", "Exploit Available for the Cisco IOS Interface Blocked Vulnerabilities", OTHERS, analyzed=False),
    _a("CA-2003-18", "Integer Overflows in Microsoft Windows DirectX MIDI Library", INTEGER_OVERFLOW),
    _a("CA-2003-19", "Exploitation of Vulnerabilities in Microsoft RPC Interface", BUFFER_OVERFLOW),
    _a("CA-2003-20", "W32/Blaster Worm", BUFFER_OVERFLOW, analyzed=False),
    _a("CA-2003-21", "W32/Sobig.F Worm", OTHERS, analyzed=False),
    _a("CA-2003-22", "Multiple Vulnerabilities in Microsoft Windows and Exchange", BUFFER_OVERFLOW),
    _a("CA-2003-23", "RPCSS Vulnerabilities in Microsoft Windows", BUFFER_OVERFLOW),
    _a("CA-2003-24", "Buffer Management Vulnerability in OpenSSH", HEAP_CORRUPTION),
    _a("CA-2003-25", "Buffer Overflow in Sendmail (prescan)", BUFFER_OVERFLOW),
    _a("CA-2003-26", "Multiple Vulnerabilities in SSL/TLS Implementations", OTHERS),
    _a("CA-2003-27", "Multiple Vulnerabilities in Microsoft Windows and Exchange", BUFFER_OVERFLOW),
    _a("CA-2003-28", "Buffer Overflow in Windows Workstation Service", BUFFER_OVERFLOW),
]


def analyzed_advisories() -> List[Advisory]:
    """The paper's 107-advisory analysis set."""
    return [adv for adv in ADVISORIES if adv.analyzed]


def category_counts() -> Counter:
    """Counts per vulnerability class over the analyzed set."""
    return Counter(adv.category for adv in analyzed_advisories())


def breakdown() -> Dict[str, float]:
    """Figure 1: percentage per vulnerability class."""
    counts = category_counts()
    total = sum(counts.values())
    return {
        category: 100.0 * counts.get(category, 0) / total
        for category in (*MEMORY_CORRUPTION_CLASSES, OTHERS)
    }


def memory_corruption_share() -> float:
    """The headline number: memory-corruption share of all advisories.

    The paper reports 67%.
    """
    counts = category_counts()
    total = sum(counts.values())
    memory = sum(counts.get(cat, 0) for cat in MEMORY_CORRUPTION_CLASSES)
    return 100.0 * memory / total


def figure1_rows() -> List[Tuple[str, int, float]]:
    """(category, count, percent) rows sorted by count, Figure 1 style."""
    counts = category_counts()
    total = sum(counts.values())
    rows = [
        (category, counts.get(category, 0),
         100.0 * counts.get(category, 0) / total)
        for category in (*MEMORY_CORRUPTION_CLASSES, OTHERS)
    ]
    rows.sort(key=lambda row: -row[1])
    return rows
