"""System-call layer: the taint-initialization boundary (section 4.4).

"Any data received from an external device that can potentially be
controlled by a malicious user are considered tainted."  The kernel marks
every byte delivered by ``SYS_READ`` (local I/O) and ``SYS_RECV`` (network
I/O) as tainted when copying it into the application's buffer, exactly as
the paper modified SimpleScalar's system-call module.  Command-line
arguments and environment variables are tainted at process setup
(:func:`repro.kernel.process.build_initial_stack`).

ABI: syscall number in ``$v0``; arguments in ``$a0``..``$a3``; result in
``$v0`` (-1 on error).  The result register is always written *untainted* --
return codes are produced by the (trusted) kernel.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from ..core.events import FaultInjected
from ..isa.instructions import REG_A0, REG_A1, REG_A2, REG_V0
from ..mem.layout import PAGE_SIZE
from ..mem.tainted_memory import MemoryFault
from .filesystem import OpenFile, SimFileSystem
from .network import Connection, ListeningSocket, SimNetwork
from .process import ProcessState, build_initial_stack

# Syscall numbers (SimpleScalar-flavoured).
SYS_EXIT = 1
SYS_READ = 3
SYS_WRITE = 4
SYS_OPEN = 5
SYS_CLOSE = 6
SYS_GETPID = 20
SYS_SETUID = 23
SYS_GETUID = 24
SYS_BRK = 45
SYS_SBRK = 46
SYS_EXEC = 59
SYS_SOCKET = 60
SYS_BIND = 61
SYS_LISTEN = 62
SYS_ACCEPT = 63
SYS_RECV = 64
SYS_SEND = 65

_FD_STDIN = 0
_FD_STDOUT = 1
_FD_STDERR = 2

#: Largest user/kernel copy the kernel will attempt.  A corrupted count
#: register (a fault-injection staple) would otherwise ask the kernel to
#: materialize gigabytes; raising a machine fault instead lets campaign
#: classification file the trial as a crash.
MAX_TRANSFER = 1 << 20

#: Objects a file descriptor can refer to.
_FdObject = Union[OpenFile, Connection, ListeningSocket, str]

#: Syscalls that deliver external input (targets for short-read and
#: truncated-input faults).
_INPUT_SYSCALLS = frozenset({3, 64})  # SYS_READ, SYS_RECV


@dataclass
class SyscallFault:
    """A kernel-layer fault armed on one :class:`Kernel`.

    Modes:

    * ``"errno"`` -- the matching syscall is not serviced at all; the
      kernel writes ``errno_result`` (default -1) to ``$v0``.
    * ``"short-read"`` -- a matching input syscall delivers at most half
      of the requested byte count.
    * ``"truncate-input"`` -- all *pending* external input (remaining
      stdin, queued network segments) is dropped before the matching
      input syscall is serviced, so it and every later read sees a
      truncated stream.

    ``number`` restricts matching to one syscall number (None = any for
    ``errno``, any input syscall for the other modes); ``occurrence`` is
    the 1-based matching call on which the fault fires.  Each armed fault
    fires exactly once.
    """

    mode: str
    number: Optional[int] = None
    occurrence: int = 1
    errno_result: int = -1
    fired: bool = False
    seen: int = field(default=0, repr=False)

    def matches(self, number: int) -> bool:
        if self.number is not None:
            return number == self.number
        if self.mode == "errno":
            return True
        return number in _INPUT_SYSCALLS

    def describe(self) -> str:
        target = "*" if self.number is None else str(self.number)
        return f"syscall-{self.mode}@{target}#{self.occurrence}"


class KernelSnapshot:
    """Opaque checkpoint of one :class:`Kernel`'s mutable state.

    ``state`` is a pickled bundle; each restore materializes a fresh
    object graph from it, so one snapshot restores any number of times.
    """

    __slots__ = ("state",)

    def __init__(self, state: bytes) -> None:
        self.state = state


class Kernel:
    """The simulated operating system bound to one process.

    Installed as the simulator's ``syscall_handler``.  Do not wire the
    pair by hand -- :func:`repro.builder.build_machine` is the one
    construction path (it builds the kernel, installs it on the
    simulator, and attaches the process image in the right order)::

        from repro.builder import build_machine

        sim, kernel = build_machine(exe, policy, argv=["prog"],
                                    stdin=b"hello")
        sim.run()
    """

    def __init__(
        self,
        argv: Optional[Sequence[str]] = None,
        env: Optional[Sequence[str]] = None,
        stdin: bytes = b"",
        filesystem: Optional[SimFileSystem] = None,
        network: Optional[SimNetwork] = None,
        uid: int = 1000,
        taint_inputs: bool = True,
    ) -> None:
        self.process = ProcessState(
            argv=list(argv or ["prog"]),
            env=list(env or []),
            uid=uid,
        )
        self.process.stdin = bytearray(stdin)
        self.fs = filesystem if filesystem is not None else SimFileSystem()
        self.net = network if network is not None else SimNetwork()
        #: Master switch for input tainting (off = the unprotected baseline
        #: machine of the overhead study; detection policies still decide
        #: what gets *checked*).
        self.taint_inputs = taint_inputs
        self._fds: Dict[int, _FdObject] = {
            _FD_STDIN: "stdin",
            _FD_STDOUT: "stdout",
            _FD_STDERR: "stderr",
        }
        self._next_fd = 3
        #: Per-fd running stream offset of delivered input bytes, so each
        #: provenance label can name which slice of an input stream it
        #: covers ("recv(fd=4) bytes 96..99").
        self._input_offsets: Dict[int, int] = {}
        self._sim = None
        #: Armed syscall-layer fault (fault-injection campaigns), or None.
        self.syscall_fault: Optional[SyscallFault] = None

    # ------------------------------------------------------------------
    # process setup
    # ------------------------------------------------------------------

    def attach(self, sim) -> None:
        """Initialize the process image: stack with argv/env, brk, registers."""
        self._sim = sim
        taint = self.taint_inputs
        sp, argc, argv_p, envp_p = build_initial_stack(
            sim.memory, self.process.argv, self.process.env, taint_args=taint
        )
        if taint:
            arg_bytes = sum(len(a) + 1 for a in self.process.argv)
            env_bytes = sum(len(e) + 1 for e in self.process.env)
            sim.stats.input_bytes_tainted += arg_bytes + env_bytes
        sim.regs.write(29, sp)          # $sp
        sim.regs.write(REG_A0, argc)
        sim.regs.write(REG_A1, argv_p)
        sim.regs.write(REG_A2, envp_p)
        data_end = sim.executable.data_end
        self.process.brk = (data_end + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def __call__(self, sim) -> None:
        number = sim.regs.value(REG_V0)
        a0 = sim.regs.value(REG_A0)
        a1 = sim.regs.value(REG_A1)
        a2 = sim.regs.value(REG_A2)
        fault = self.syscall_fault
        if fault is not None and not fault.fired and fault.matches(number):
            fault.seen += 1
            if fault.seen >= fault.occurrence:
                fault.fired = True
                result, a2 = self._apply_syscall_fault(fault, sim, number, a2)
                if result is not None:
                    sim.regs.write(REG_V0, result & 0xFFFFFFFF, 0)
                    return
        handler = self._handlers.get(number)
        if handler is None:
            # A machine-level fault, not a host-side KeyError: corrupted
            # $v0 values land here under fault injection, and the engines
            # turn the fault into a MemoryFaulted event + crash outcome.
            from ..cpu.machine import SimulatorFault

            raise SimulatorFault(
                f"unknown syscall {number} at pc={sim.pc:#x}"
            )
        result = handler(self, sim, a0, a1, a2)
        if result is not None:
            sim.regs.write(REG_V0, result & 0xFFFFFFFF, 0)

    def _apply_syscall_fault(
        self, fault: SyscallFault, sim, number: int, count: int
    ) -> Tuple[Optional[int], int]:
        """Apply an armed fault.

        Returns ``(result, count)``: a non-None ``result`` short-circuits
        the real handler (errno injection); otherwise the handler runs
        with the (possibly reduced) ``count``.
        """
        if fault.mode == "errno":
            detail = f"{fault.describe()}: returned {fault.errno_result}"
            result: Optional[int] = fault.errno_result
        elif fault.mode == "short-read":
            short = count // 2
            detail = f"{fault.describe()}: count {count} -> {short}"
            result = None
            count = short
        elif fault.mode == "truncate-input":
            dropped = len(self.process.stdin)
            del self.process.stdin[:]
            for obj in self._fds.values():
                if isinstance(obj, Connection):
                    dropped += sum(len(s) for s in obj.peer._queue)
                    obj.peer._queue.clear()
            detail = f"{fault.describe()}: dropped {dropped} pending bytes"
            result = None
        else:
            raise ValueError(f"unknown syscall fault mode {fault.mode!r}")
        subs = sim.events.subscribers(FaultInjected)
        if subs:
            sim.events.emit(
                FaultInjected(sim.pc, f"syscall-{fault.mode}", detail)
            )
        return result, count

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _alloc_fd(self, obj: _FdObject) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = obj
        return fd

    def _copy_in_tainted(
        self,
        sim,
        addr: int,
        data: bytes,
        *,
        syscall: str,
        fd: int,
        source_kind: str,
    ) -> None:
        """Copy external bytes into guest memory, marking them tainted.

        This is the paper's RT-register mechanism: every delivered byte gets
        its taintedness bit set on the way from kernel to user space.  The
        actual write goes through the machine's single plane-routed
        :meth:`~repro.cpu.machine.MachineState.copy_in` path, so
        cache-enabled and cache-less runs share identical taint semantics.
        In label mode one fresh :class:`~repro.taint.labels.TaintLabel` is
        allocated per copy-in, covering this delivery's slice of the fd's
        input stream.
        """
        tainted = self.taint_inputs
        offset = self._input_offsets.get(fd, 0)
        self._input_offsets[fd] = offset + len(data)
        label_sid = 0
        table = sim.plane.table
        if tainted and data and table is not None:
            label_id = table.new_label(
                source_kind=source_kind,
                syscall=syscall,
                fd=fd,
                offset_range=(offset, offset + len(data)),
                insn_index=sim.stats.instructions,
            )
            label_sid = table.singleton(label_id)
        sim.copy_in(addr, data, tainted, label_sid)
        if tainted:
            sim.stats.input_bytes_tainted += len(data)

    def _copy_out(self, sim, addr: int, count: int) -> bytes:
        if count > MAX_TRANSFER:
            raise MemoryFault(
                f"implausible transfer of {count} bytes from {addr:#010x} "
                f"(corrupted count?)"
            )
        if sim.caches is None:
            return sim.memory.read_bytes(addr, count)
        out = bytearray()
        for i in range(count):
            out.append(sim.mem_read(addr + i, 1)[0])
        return bytes(out)

    def _read_cstring(self, sim, addr: int, limit: int = 4096) -> str:
        if sim.caches is None:
            # Page-chunked NUL scan (memory.read_cstring stops at the
            # terminator or the limit, same contract as the loop below);
            # path/string copy-ins run on every open/exec, so this is hot.
            return sim.memory.read_cstring(addr, limit).decode("latin-1")
        out = bytearray()
        for i in range(limit):
            byte = sim.mem_read(addr + i, 1)[0]
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")

    # ------------------------------------------------------------------
    # checkpoint / rollback
    # ------------------------------------------------------------------

    def snapshot(self) -> "KernelSnapshot":
        """Capture all mutable OS-side state of this process.

        The bundle is pickled *once* at capture; each restore is a single
        ``pickle.loads`` (which, like deepcopy, preserves the identity
        sharing between descriptor-table entries and the network /
        filesystem objects they point at -- within one serialization
        round-trip, shared references stay shared).  That halves the
        per-restore cost of the old deepcopy-at-capture +
        deepcopy-at-restore scheme, which profiling showed dominated
        checkpoint rollback for small workloads.
        """
        return KernelSnapshot(
            pickle.dumps(
                (
                    self.process,
                    self.fs,
                    self.net,
                    self._fds,
                    self._next_fd,
                    self._input_offsets,
                    self.syscall_fault,
                ),
                pickle.HIGHEST_PROTOCOL,
            )
        )

    def restore(self, snapshot: "KernelSnapshot") -> None:
        """Roll the kernel back to a snapshot (reusable: the pickled
        bundle is materialized afresh on every restore).

        The :class:`~repro.kernel.process.ProcessState` object keeps its
        identity (its fields are overwritten in place) so holders of
        ``kernel.process`` stay valid across rollback; descriptor-table,
        filesystem, and network objects are replaced wholesale.
        """
        process, fs, net, fds, next_fd, input_offsets, fault = pickle.loads(
            snapshot.state
        )
        self.process.__dict__.update(process.__dict__)
        self.fs = fs
        self.net = net
        self._fds = fds
        self._next_fd = next_fd
        self._input_offsets = input_offsets
        self.syscall_fault = fault

    # ------------------------------------------------------------------
    # syscall implementations
    # ------------------------------------------------------------------

    def _sys_exit(self, sim, status, _a1, _a2):
        sim.halt(status - 0x100000000 if status & 0x80000000 else status)
        return None

    def _sys_read(self, sim, fd, buf, count):
        obj = self._fds.get(fd)
        if obj is None:
            return -1
        if obj == "stdin":
            data = bytes(self.process.stdin[:count])
            del self.process.stdin[: len(data)]
            source_kind = "stdin"
        elif isinstance(obj, OpenFile):
            data = self.fs.read(obj, count)
            source_kind = "file"
        elif isinstance(obj, Connection):
            data = obj.recv(count)
            source_kind = "net"
        else:
            return -1
        self._copy_in_tainted(
            sim, buf, data, syscall="read", fd=fd, source_kind=source_kind
        )
        return len(data)

    def _sys_write(self, sim, fd, buf, count):
        data = self._copy_out(sim, buf, count)
        obj = self._fds.get(fd)
        if obj == "stdout":
            self.process.stdout.extend(data)
            return len(data)
        if obj == "stderr":
            self.process.stderr.extend(data)
            return len(data)
        if isinstance(obj, OpenFile):
            return self.fs.write(obj, data)
        if isinstance(obj, Connection):
            return obj.send(data)
        return -1

    def _sys_open(self, sim, path_p, flags, _mode):
        path = self._read_cstring(sim, path_p)
        self.process.record("open", path)
        handle = self.fs.open(path, flags)
        if handle is None:
            return -1
        return self._alloc_fd(handle)

    def _sys_close(self, sim, fd, _a1, _a2):
        obj = self._fds.pop(fd, None)
        if isinstance(obj, Connection):
            obj.closed = True
        return 0 if obj is not None else -1

    def _sys_getpid(self, sim, _a0, _a1, _a2):
        return 4711

    def _sys_setuid(self, sim, uid, _a1, _a2):
        self.process.record("setuid", str(uid))
        self.process.uid = uid
        return 0

    def _sys_getuid(self, sim, _a0, _a1, _a2):
        return self.process.uid

    def _sys_brk(self, sim, addr, _a1, _a2):
        if addr:
            self.process.brk = addr
        return self.process.brk

    def _sys_sbrk(self, sim, increment, _a1, _a2):
        if increment & 0x80000000:
            increment -= 0x100000000
        old = self.process.brk
        self.process.brk = old + increment
        return old

    def _sys_exec(self, sim, path_p, _argv, _envp):
        path = self._read_cstring(sim, path_p)
        self.process.record("exec", path)
        return 0

    def _sys_socket(self, sim, _domain, _type, _proto):
        return self._alloc_fd(ListeningSocket())

    def _sys_bind(self, sim, fd, port, _len):
        obj = self._fds.get(fd)
        if not isinstance(obj, ListeningSocket):
            return -1
        obj.port = port
        return 0

    def _sys_listen(self, sim, fd, _backlog, _a2):
        obj = self._fds.get(fd)
        if not isinstance(obj, ListeningSocket):
            return -1
        self.net.register_listener(obj)
        return 0

    def _sys_accept(self, sim, fd, _addr, _len):
        obj = self._fds.get(fd)
        if not isinstance(obj, ListeningSocket):
            return -1
        connection = obj.accept()
        if connection is None:
            return -1
        return self._alloc_fd(connection)

    def _sys_recv(self, sim, fd, buf, count):
        obj = self._fds.get(fd)
        if not isinstance(obj, Connection):
            return -1
        data = obj.recv(count)
        self._copy_in_tainted(
            sim, buf, data, syscall="recv", fd=fd, source_kind="net"
        )
        return len(data)

    def _sys_send(self, sim, fd, buf, count):
        obj = self._fds.get(fd)
        if not isinstance(obj, Connection):
            return -1
        data = self._copy_out(sim, buf, count)
        return obj.send(data)

    _handlers = {
        SYS_EXIT: _sys_exit,
        SYS_READ: _sys_read,
        SYS_WRITE: _sys_write,
        SYS_OPEN: _sys_open,
        SYS_CLOSE: _sys_close,
        SYS_GETPID: _sys_getpid,
        SYS_SETUID: _sys_setuid,
        SYS_GETUID: _sys_getuid,
        SYS_BRK: _sys_brk,
        SYS_SBRK: _sys_sbrk,
        SYS_EXEC: _sys_exec,
        SYS_SOCKET: _sys_socket,
        SYS_BIND: _sys_bind,
        SYS_LISTEN: _sys_listen,
        SYS_ACCEPT: _sys_accept,
        SYS_RECV: _sys_recv,
        SYS_SEND: _sys_send,
    }
