"""Loopback network substrate with scripted remote peers.

The paper extended SimpleScalar to "support network socket applications" so
real servers could run under the simulator while attacks were launched at
them.  We reproduce that substrate: a simulated server program calls
``socket``/``bind``/``listen``/``accept``/``recv``/``send``, and the remote
end of each accepted connection is a :class:`ScriptedClient` -- a list of
messages the "attacker" (or a benign client) sends, played back in order.

Everything the server receives is external input; the kernel marks it
tainted at the ``SYS_RECV`` boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ScriptedClient:
    """A remote peer that sends a fixed sequence of messages.

    Each element of ``messages`` is delivered as one stream segment;
    a server ``recv`` never crosses a segment boundary (mimicking one
    network packet per message, which is how the published exploits
    deliver their payloads).  After the last message, ``recv`` returns 0
    (orderly shutdown).
    """

    messages: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._queue: List[bytearray] = [bytearray(m) for m in self.messages]
        #: Bytes the server sent back to this client.
        self.received = bytearray()

    def pull(self, count: int) -> bytes:
        """Take up to ``count`` bytes of the current segment."""
        while self._queue and not self._queue[0]:
            self._queue.pop(0)
        if not self._queue:
            return b""
        segment = self._queue[0]
        chunk = bytes(segment[:count])
        del segment[:count]
        if not segment:
            self._queue.pop(0)
        return chunk

    def push(self, data: bytes) -> None:
        """Record bytes sent by the server."""
        self.received.extend(data)

    @property
    def transcript(self) -> bytes:
        """Everything the server sent to this peer."""
        return bytes(self.received)


@dataclass
class Connection:
    """An accepted connection bound to its scripted remote peer."""

    peer: ScriptedClient
    closed: bool = False

    def recv(self, count: int) -> bytes:
        return b"" if self.closed else self.peer.pull(count)

    def send(self, data: bytes) -> int:
        if not self.closed:
            self.peer.push(data)
        return len(data)


class ListeningSocket:
    """A bound+listening server socket with a queue of pending clients."""

    def __init__(self, port: int = 0) -> None:
        self.port = port
        self.pending: List[ScriptedClient] = []

    def accept(self) -> Optional[Connection]:
        if not self.pending:
            return None
        return Connection(self.pending.pop(0))


class SimNetwork:
    """The network fabric for one simulated host."""

    def __init__(self) -> None:
        self._clients: List[ScriptedClient] = []
        self.listeners: List[ListeningSocket] = []

    def connect_client(self, client: ScriptedClient) -> None:
        """Queue a client connection for the next listening socket."""
        self._clients.append(client)

    def register_listener(self, socket: ListeningSocket) -> None:
        """Called by the kernel on ``listen``; hands over queued clients."""
        socket.pending.extend(self._clients)
        self._clients.clear()
        self.listeners.append(socket)
