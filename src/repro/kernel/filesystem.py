"""In-memory filesystem for the simulated OS.

Files live in a flat ``path -> bytearray`` namespace.  Everything a
simulated program reads from a file is *external input* and is marked
tainted at the read boundary (section 4.4), which the kernel enforces --
this module only stores bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

# open(2)-style flags (Linux numeric values).
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400


@dataclass
class OpenFile:
    """One open file description."""

    path: str
    flags: int
    position: int = 0

    @property
    def readable(self) -> bool:
        return self.flags & 0x3 in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return self.flags & 0x3 in (O_WRONLY, O_RDWR)


class SimFileSystem:
    """A tiny in-memory filesystem."""

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}
        #: Paths opened during the run, for test assertions.
        self.open_log: List[str] = []

    # -- host-side API (tests and workload setup) ---------------------------

    def add_file(self, path: str, contents: bytes) -> None:
        """Create or replace a file with host-supplied contents."""
        self._files[path] = bytearray(contents)

    def read_file(self, path: str) -> bytes:
        """Host-side read of a file's current contents."""
        return bytes(self._files[path])

    def exists(self, path: str) -> bool:
        return path in self._files

    def paths(self) -> List[str]:
        return sorted(self._files)

    # -- kernel-side API -----------------------------------------------------

    def open(self, path: str, flags: int) -> Optional[OpenFile]:
        """Open a file; returns None on failure (missing file, bad flags)."""
        exists = path in self._files
        if not exists:
            if not flags & O_CREAT:
                return None
            self._files[path] = bytearray()
        handle = OpenFile(path=path, flags=flags)
        if flags & O_TRUNC and handle.writable:
            self._files[path] = bytearray()
        if flags & O_APPEND:
            handle.position = len(self._files[path])
        self.open_log.append(path)
        return handle

    def read(self, handle: OpenFile, count: int) -> bytes:
        """Read up to ``count`` bytes at the handle's position."""
        if not handle.readable:
            return b""
        data = self._files.get(handle.path, bytearray())
        chunk = bytes(data[handle.position : handle.position + count])
        handle.position += len(chunk)
        return chunk

    def write(self, handle: OpenFile, data: bytes) -> int:
        """Write at the handle's position, extending the file as needed."""
        if not handle.writable:
            return -1
        contents = self._files.setdefault(handle.path, bytearray())
        end = handle.position + len(data)
        if len(contents) < end:
            contents.extend(b"\0" * (end - len(contents)))
        contents[handle.position : end] = data
        handle.position = end
        return len(data)
