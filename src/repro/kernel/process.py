"""Process environment: argv/env injection and compromise bookkeeping.

Command-line arguments and environment variables are external input, so the
bytes of every argv/env string are written to the stack *tainted* (section
4.4 lists both among the tainted data sources).

The process also records *compromise indicators*: security-relevant events
(exec of a program, privilege changes, file openings) that the evaluation
harness uses to show an attack **succeeded** when the machine runs without
the paper's protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..mem.layout import STACK_TOP


@dataclass
class CompromiseEvent:
    """One security-relevant event emitted via a system call."""

    kind: str       # "exec" | "setuid" | "open" | ...
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}({self.detail})"


@dataclass
class ProcessState:
    """Per-process OS state tracked by the kernel."""

    argv: List[str] = field(default_factory=list)
    env: List[str] = field(default_factory=list)
    uid: int = 1000
    #: Initial break is set by the kernel when attaching to a simulator.
    brk: int = 0
    events: List[CompromiseEvent] = field(default_factory=list)
    stdout: bytearray = field(default_factory=bytearray)
    stderr: bytearray = field(default_factory=bytearray)
    stdin: bytearray = field(default_factory=bytearray)

    def record(self, kind: str, detail: str) -> None:
        self.events.append(CompromiseEvent(kind, detail))

    def executed_programs(self) -> List[str]:
        """Paths passed to exec -- the classic "attacker got a shell" signal."""
        return [e.detail for e in self.events if e.kind == "exec"]

    @property
    def stdout_text(self) -> str:
        return self.stdout.decode("latin-1")


def build_initial_stack(
    memory,
    argv: Sequence[str],
    env: Sequence[str],
    stack_top: int = STACK_TOP,
    taint_args: bool = True,
) -> Tuple[int, int, int, int]:
    """Lay out argv/env on the stack; returns ``(sp, argc, argv_p, envp_p)``.

    Layout (from high to low addresses): the string bytes (tainted), then
    the NULL-terminated ``envp`` vector, then the NULL-terminated ``argv``
    vector.  ``sp`` is left word-aligned below the vectors.  Pointer arrays
    are untainted -- they are built by the kernel, not by external input.

    When the memory's taint plane runs in label mode, each argv/env string
    gets its own provenance label (``argv[i]`` / ``env[i]``, covering the
    string's bytes including the NUL).
    """
    plane = getattr(memory, "plane", None)
    table = plane.table if plane is not None else None

    def _stamp(source_kind: str, index: int, addr: int, length: int) -> None:
        if not taint_args or table is None:
            return
        label_id = table.new_label(
            source_kind=source_kind,
            fd=index,
            offset_range=(0, length),
        )
        plane.label_span(addr, length, table.singleton(label_id))

    cursor = stack_top
    arg_addresses: List[int] = []
    env_addresses: List[int] = []
    for i, text in enumerate(argv):
        blob = text.encode("latin-1") + b"\0"
        cursor -= len(blob)
        memory.write_bytes(cursor, blob, taint_args)
        _stamp("argv", i, cursor, len(blob))
        arg_addresses.append(cursor)
    for i, text in enumerate(env):
        blob = text.encode("latin-1") + b"\0"
        cursor -= len(blob)
        memory.write_bytes(cursor, blob, taint_args)
        _stamp("env", i, cursor, len(blob))
        env_addresses.append(cursor)
    cursor &= ~3  # word-align

    cursor -= 4 * (len(env_addresses) + 1)
    envp_pointer = cursor
    for i, addr in enumerate(env_addresses):
        memory.write(cursor + 4 * i, 4, addr, 0)
    memory.write(cursor + 4 * len(env_addresses), 4, 0, 0)

    cursor -= 4 * (len(arg_addresses) + 1)
    argv_pointer = cursor
    for i, addr in enumerate(arg_addresses):
        memory.write(cursor + 4 * i, 4, addr, 0)
    memory.write(cursor + 4 * len(arg_addresses), 4, 0, 0)

    stack_pointer = cursor - 16 & ~7
    return stack_pointer, len(arg_addresses), argv_pointer, envp_pointer
