"""Stable facade over the whole reproduction: ``repro.api.Session``.

Before this module, the repo had four divergent entry points -- the
replay harness (:func:`repro.attacks.replay.run_executable`), the fault
campaign runner (:class:`repro.fault.campaign.FaultCampaign`), the evalx
experiment runners, and the CLI's internal plumbing -- each with its own
keyword conventions and its own ad-hoc result shape.  :class:`Session`
unifies them:

* one place to pick the **policy** (by name or instance), the **engine**
  (``"functional"`` or ``"pipeline"``), and the cache model -- all
  carried by one validated :class:`ExecOptions` bundle
  (``Session(options=ExecOptions(...))``); the flat per-call kwargs the
  repo grew up with keep working as deprecated aliases routed through a
  single normalization site (:func:`_normalize_options`), each warning
  once per process;
* one place to attach **observability**: a
  :class:`~repro.obs.metrics.MetricsRegistry` (``metrics=True`` or your
  own registry) and a structured **trace** (ring buffer and/or streaming
  JSONL, see :class:`TraceConfig`);
* one **result family**: every ``run_*`` method returns an object with a
  ``to_json()`` that validates against the unified schema
  (:func:`validate_result_json`) -- ``{"kind", "detected", "stats",
  "metrics"}`` plus kind-specific extras.

Quickstart::

    from repro.api import ExecOptions, Session

    session = Session(options=ExecOptions(policy="paper", metrics=True))
    result = session.run_minic(VICTIM_SOURCE, stdin=b"a" * 64)
    assert result.detected
    print(result.to_json()["metrics"]["counters"]["run.instructions"])

The pre-facade entry points (``repro.run_minic``/``run_executable``, the
raw ``FaultCampaign``) remain importable as thin, stable shims; new code
should use the facade.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, Optional, Sequence, Union

from .attacks.replay import RunResult, run_executable as _run_executable
from .defenses.base import Detector
from .defenses.registry import DEFENSES
from .defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from .fault.campaign import CampaignConfig, CampaignResult, FaultCampaign
from .fault.workloads import Workload, builtin_workload
from .isa.program import Executable
from .libc.build import build_program
from .obs import MetricsRegistry, Observer, TraceRecorder

__all__ = [
    "ENGINES",
    "ExecOptions",
    "ExperimentResult",
    "LIMIT_REASONS",
    "POLICIES",
    "RESULT_KINDS",
    "Session",
    "TraceConfig",
    "resolve_policy",
    "validate_result_json",
]

#: Policy aliases accepted everywhere a policy can be named (the CLI's
#: ``--policy`` choices come from here too).
POLICIES: Dict[str, Callable[[], DetectionPolicy]] = {
    "paper": PointerTaintPolicy,
    "pointer-taintedness": PointerTaintPolicy,
    "control-data": ControlDataPolicy,
    "none": NullPolicy,
}

#: Execution engines a session can drive.
ENGINES = ("functional", "pipeline")

#: The unified result family.
RESULT_KINDS = ("run", "campaign", "experiment")

#: Watchdog limit reasons a structured ``stats.limit`` block may carry.
LIMIT_REASONS = ("instructions", "wallclock", "cycles")


def resolve_policy(
    policy: Union[None, str, DetectionPolicy, Callable[[], DetectionPolicy]],
) -> DetectionPolicy:
    """Turn a policy spec (alias, instance, factory, None) into an instance."""
    if policy is None:
        return PointerTaintPolicy()
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {sorted(POLICIES)}"
            ) from None
    if isinstance(policy, DetectionPolicy):
        return policy
    if callable(policy):
        return policy()
    raise TypeError(f"cannot resolve policy from {policy!r}")


@dataclass
class TraceConfig:
    """How a session records traces.

    ``path`` streams every record to a JSONL file as it fires (constant
    memory for arbitrarily long runs); the bounded ring of the last
    ``limit`` records is always kept and is exposed as
    ``session.last_trace``.  ``events`` follows the
    :func:`repro.obs.trace.resolve_event_types` grammar (None = every
    event type except ``InstructionRetired``; ``"all"`` = everything).
    """

    path: Optional[str] = None
    events: Union[None, str, Sequence] = None
    limit: int = 65536

    @classmethod
    def coerce(
        cls, value: Union[None, bool, str, "TraceConfig"]
    ) -> Optional["TraceConfig"]:
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, str):
            return cls(path=value)
        if isinstance(value, cls):
            return value
        raise TypeError(f"cannot build a TraceConfig from {value!r}")


#: Sentinel distinguishing "kwarg not passed" from any real value, so the
#: normalization site only overrides options fields the caller spelled out.
_UNSET = object()

#: Legacy kwarg names that have already warned this process (the
#: acceptance contract is "warn exactly once", not once per call site).
_warned_legacy_kwargs: set = set()


def _warn_legacy_kwarg(name: str) -> None:
    if name in _warned_legacy_kwargs:
        return
    _warned_legacy_kwargs.add(name)
    warnings.warn(
        f"the {name}= kwarg is a deprecated alias; pass "
        f"options=ExecOptions(...) instead",
        DeprecationWarning,
        stacklevel=4,
    )


@dataclass(frozen=True)
class ExecOptions:
    """Every execution knob, validated once, in one bundle.

    Before this class, the same knobs were spelled as drifting per-call
    kwargs across :class:`Session`, the replay harness
    (``use_pipeline=``), :class:`~repro.fault.campaign.CampaignConfig`,
    the CLI flags, and the serve request schema.  ``ExecOptions`` is the
    one shape they all normalize into; the legacy kwargs keep working as
    deprecated aliases routed through :func:`_normalize_options` (and
    warn once per process).

    Fields:
        engine: ``"functional"`` or ``"pipeline"``.
        policy: detection policy alias, instance, or factory.
        defense: pluggable defense name or built
            :class:`~repro.defenses.Detector`.
        taint_labels: run the taint plane in provenance-label mode.
        use_caches: route data accesses through the L1/L2 hierarchy.
        superblocks: enable the fused superblock dispatch tier (on by
            default; results are byte-identical either way -- the toggle
            exists for benchmarking and digest-invariance tests).
        metrics: ``True`` for a fresh registry, or a shared
            :class:`MetricsRegistry`.
        trace: ``True`` (ring only), a JSONL path, or a
            :class:`TraceConfig` (the coarse legacy spelling).
        trace_out: JSONL path for the streamed trace (overrides
            ``trace``'s path).
        trace_events: event-type selection for the trace (see
            :class:`TraceConfig`).
        workers: process-pool fan-out for campaigns/experiments
            (``0`` = one per core).
        max_instructions: per-run watchdog budget.
    """

    engine: str = "functional"
    policy: Union[None, str, DetectionPolicy, Callable] = "paper"
    defense: Union[None, str, Detector] = None
    taint_labels: bool = False
    use_caches: bool = False
    superblocks: bool = True
    metrics: Union[None, bool, MetricsRegistry] = None
    trace: Union[None, bool, str, TraceConfig] = None
    trace_out: Optional[str] = None
    trace_events: Union[None, str, Sequence] = None
    workers: int = 1
    max_instructions: int = 20_000_000

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose {ENGINES}"
            )
        if isinstance(self.defense, str) and self.defense not in DEFENSES:
            raise ValueError(
                f"unknown defense {self.defense!r}; choose from "
                f"{sorted(DEFENSES.names())}"
            )
        if isinstance(self.policy, str) and self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from "
                f"{sorted(POLICIES)}"
            )
        for flag in ("taint_labels", "use_caches", "superblocks"):
            if not isinstance(getattr(self, flag), bool):
                raise ValueError(f"{flag} must be a bool")
        if not (
            isinstance(self.workers, int)
            and not isinstance(self.workers, bool)
            and self.workers >= 0
        ):
            raise ValueError("workers must be an int >= 0 (0 = one per core)")
        if not (
            isinstance(self.max_instructions, int)
            and not isinstance(self.max_instructions, bool)
            and self.max_instructions >= 1
        ):
            raise ValueError("max_instructions must be an int >= 1")
        if self.trace_out is not None and not isinstance(self.trace_out, str):
            raise ValueError("trace_out must be a path string or None")
        TraceConfig.coerce(self.trace)  # raises on a bogus trace spec

    @classmethod
    def coerce(cls, value: Union[None, dict, "ExecOptions"]) -> "ExecOptions":
        """Accept an instance, a plain dict of fields, or None (defaults)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            known = {f.name for f in fields(cls)}
            unknown = sorted(set(value) - known)
            if unknown:
                raise ValueError(
                    f"unknown ExecOptions field(s) {unknown}; "
                    f"choose from {sorted(known)}"
                )
            return cls(**value)
        raise TypeError(f"cannot build ExecOptions from {value!r}")

    def merged(self, **overrides: Any) -> "ExecOptions":
        """A copy with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides) if overrides else self

    def trace_config(self) -> Optional[TraceConfig]:
        """Resolve the trace trio into one :class:`TraceConfig` (or None)."""
        base = TraceConfig.coerce(self.trace)
        if self.trace_out is None and self.trace_events is None:
            return base
        if base is None:
            base = TraceConfig()
        return TraceConfig(
            path=self.trace_out if self.trace_out is not None else base.path,
            events=(
                self.trace_events
                if self.trace_events is not None
                else base.events
            ),
            limit=base.limit,
        )


def _normalize_options(
    options: Union[None, dict, ExecOptions],
    legacy: Dict[str, Any],
    base: Optional[ExecOptions] = None,
    new: Optional[Dict[str, Any]] = None,
) -> ExecOptions:
    """THE one legacy-kwarg normalization site.

    Every entry point -- ``Session()``, ``run_minic``/``run_executable``,
    ``run_campaign``, ``run_experiment``, the CLI, the serve workers --
    funnels through here, so alias translation and deprecation warnings
    cannot drift between layers.

    ``options`` wins wholesale when given; mixing it with per-call kwargs
    raises, because a silent merge would make precedence ambiguous.
    Otherwise each ``legacy`` kwarg warns once per process
    (:class:`DeprecationWarning`) and overrides ``base`` (the session's
    options, or the defaults).  ``use_pipeline`` is translated onto
    ``engine``; a legacy ``trace=`` spec replaces the whole trace trio.
    ``new`` carries the non-deprecated spellings (``superblocks=``),
    which override without warning.
    """
    new = new or {}
    if options is not None:
        if legacy or new:
            mixed = sorted(list(legacy) + list(new))
            raise ValueError(
                f"pass either options= or individual kwargs, not both "
                f"(got options= plus {mixed})"
            )
        return ExecOptions.coerce(options)
    opts = base if base is not None else ExecOptions()
    overrides: Dict[str, Any] = {}
    for name, value in legacy.items():
        _warn_legacy_kwarg(name)
        if name == "use_pipeline":
            overrides["engine"] = "pipeline" if value else "functional"
        elif name == "trace":
            overrides.update(trace=value, trace_out=None, trace_events=None)
        else:
            overrides[name] = value
    overrides.update(new)
    return opts.merged(**overrides)


@dataclass
class ExperimentResult:
    """One evalx artifact run through the facade."""

    name: str
    data: Any
    report: str = ""
    detected: bool = False
    stats: Dict[str, Any] = field(default_factory=dict)
    metrics: Optional[dict] = None
    elapsed: float = 0.0

    def to_json(self) -> dict:
        return {
            "kind": "experiment",
            "name": self.name,
            "detected": self.detected,
            "stats": dict(self.stats, elapsed_seconds=round(self.elapsed, 4)),
            "metrics": self.metrics if self.metrics is not None else {},
        }


def _validate_error_envelope(payload: dict, problems: list) -> None:
    """Checks for the ``{"kind": "error", "error": {...}}`` family."""
    error = payload.get("error")
    if not isinstance(error, dict):
        problems.append("'error' must be a dict with 'type' and 'message'")
        return
    if not (isinstance(error.get("type"), str) and error["type"]):
        problems.append("error.type must be a non-empty str")
    if not isinstance(error.get("message"), str):
        problems.append("error.message must be a str")
    reason = payload.get("reason")
    if reason is not None and not (isinstance(reason, str) and reason):
        problems.append("'reason' must be a non-empty str when present")


def _validate_job_envelope(job: Any, problems: list) -> None:
    """Checks for the per-job accounting block served responses carry."""
    if job is None:
        return
    if not isinstance(job, dict):
        problems.append("'job' must be a dict")
        return
    if not (isinstance(job.get("id"), str) and job["id"]):
        problems.append("job.id must be a non-empty str")
    for key in ("queue_ms", "exec_ms"):
        if key not in job:
            continue
        value = job.get(key)
        if not (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value >= 0
        ):
            problems.append(f"job.{key} must be a number >= 0")
    retries = job.get("retries")
    if retries is not None and not (
        isinstance(retries, int)
        and not isinstance(retries, bool)
        and retries >= 0
    ):
        problems.append("job.retries must be an int >= 0")


def validate_result_json(payload: Any) -> dict:
    """Assert ``payload`` matches the unified result schema; return it.

    Required shape (extras are allowed)::

        {"kind": "run" | "campaign" | "experiment",
         "detected": <bool>,
         "stats": <dict>,
         "metrics": <dict>}

    When ``stats`` carries a ``"provenance"`` list (label-mode runs),
    each entry must be a dict with the :class:`repro.taint.TaintLabel`
    fields: ``source_kind`` (non-empty str), ``offset_range`` (pair of
    ints), ``insn_index`` (int), ``describe`` (str); ``syscall`` and
    ``fd`` may be null.

    When ``stats`` carries a ``"parallel"`` dict (pool-executed
    campaigns), it must have ``workers`` (int >= 1), ``chunks``
    (int >= 1), and ``wall_s`` (number >= 0).

    When ``stats`` carries a ``"defenses"`` dict (runs with a pluggable
    defense attached), it must be non-empty and map defense names
    (non-empty str) to summary dicts each carrying ``alerts`` (int >= 0)
    and ``checks`` (int >= 0); extra summary keys are allowed.

    Two service-era extensions are also part of the schema:

    * ``{"kind": "error", "error": {"type", "message"}}`` -- the uniform
      failure envelope every CLI ``--json`` failure and every
      ``repro serve`` rejection uses.  ``type`` must be a non-empty
      string, ``message`` a string; extras (``reason``, ``job``) are
      allowed, and the run-result keys are not required.
    * a ``"job"`` dict on any payload (responses served over the
      gateway) with ``id`` (non-empty str), ``queue_ms``/``exec_ms``
      (numbers >= 0), and ``retries`` (int >= 0).

    When ``stats`` carries a ``"limit"`` dict (watchdog-terminated
    runs), its ``reason`` must be one of :data:`LIMIT_REASONS` and
    ``instructions`` an int >= 0.
    """
    problems = []
    if not isinstance(payload, dict):
        raise ValueError(f"result payload must be a dict, got {type(payload)}")
    kind = payload.get("kind")
    if kind == "error":
        _validate_error_envelope(payload, problems)
        _validate_job_envelope(payload.get("job"), problems)
        if problems:
            raise ValueError(
                "result does not match the unified schema: "
                + "; ".join(problems)
            )
        return payload
    if kind not in RESULT_KINDS:
        problems.append(f"kind={kind!r} not in {RESULT_KINDS + ('error',)}")
    _validate_job_envelope(payload.get("job"), problems)
    if not isinstance(payload.get("detected"), bool):
        problems.append("'detected' must be a bool")
    if not isinstance(payload.get("stats"), dict):
        problems.append("'stats' must be a dict")
    if not isinstance(payload.get("metrics"), dict):
        problems.append("'metrics' must be a dict")
    provenance = (
        payload["stats"].get("provenance")
        if isinstance(payload.get("stats"), dict)
        else None
    )
    if provenance is not None:
        if not isinstance(provenance, list) or not provenance:
            problems.append("'stats.provenance' must be a non-empty list")
        else:
            for i, entry in enumerate(provenance):
                where = f"stats.provenance[{i}]"
                if not isinstance(entry, dict):
                    problems.append(f"{where} must be a dict")
                    continue
                if not (
                    isinstance(entry.get("source_kind"), str)
                    and entry["source_kind"]
                ):
                    problems.append(
                        f"{where}.source_kind must be a non-empty str"
                    )
                rng = entry.get("offset_range")
                if not (
                    isinstance(rng, (list, tuple))
                    and len(rng) == 2
                    and all(isinstance(x, int) for x in rng)
                ):
                    problems.append(
                        f"{where}.offset_range must be a pair of ints"
                    )
                if not isinstance(entry.get("insn_index"), int):
                    problems.append(f"{where}.insn_index must be an int")
                if not isinstance(entry.get("describe"), str):
                    problems.append(f"{where}.describe must be a str")
                for optional in ("syscall", "fd"):
                    value = entry.get(optional)
                    if value is not None and not isinstance(
                        value, (str, int)
                    ):
                        problems.append(
                            f"{where}.{optional} must be null, str, or int"
                        )
    parallel = (
        payload["stats"].get("parallel")
        if isinstance(payload.get("stats"), dict)
        else None
    )
    if parallel is not None:
        if not isinstance(parallel, dict):
            problems.append("'stats.parallel' must be a dict")
        else:
            for key, minimum in (("workers", 1), ("chunks", 1)):
                value = parallel.get(key)
                if not (
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and value >= minimum
                ):
                    problems.append(
                        f"stats.parallel.{key} must be an int >= {minimum}"
                    )
            wall = parallel.get("wall_s")
            if not (
                isinstance(wall, (int, float))
                and not isinstance(wall, bool)
                and wall >= 0
            ):
                problems.append(
                    "stats.parallel.wall_s must be a number >= 0"
                )
    limit = (
        payload["stats"].get("limit")
        if isinstance(payload.get("stats"), dict)
        else None
    )
    if limit is not None:
        if not isinstance(limit, dict):
            problems.append("'stats.limit' must be a dict")
        else:
            if limit.get("reason") not in LIMIT_REASONS:
                problems.append(
                    f"stats.limit.reason must be one of {LIMIT_REASONS}"
                )
            insns = limit.get("instructions")
            if not (
                isinstance(insns, int)
                and not isinstance(insns, bool)
                and insns >= 0
            ):
                problems.append(
                    "stats.limit.instructions must be an int >= 0"
                )
    defenses = (
        payload["stats"].get("defenses")
        if isinstance(payload.get("stats"), dict)
        else None
    )
    if defenses is not None:
        if not isinstance(defenses, dict) or not defenses:
            problems.append("'stats.defenses' must be a non-empty dict")
        else:
            for name, summary in defenses.items():
                where = f"stats.defenses[{name!r}]"
                if not (isinstance(name, str) and name):
                    problems.append(
                        "stats.defenses keys must be non-empty strings"
                    )
                if not isinstance(summary, dict):
                    problems.append(f"{where} must be a dict")
                    continue
                for key in ("alerts", "checks"):
                    value = summary.get(key)
                    if not (
                        isinstance(value, int)
                        and not isinstance(value, bool)
                        and value >= 0
                    ):
                        problems.append(
                            f"{where}.{key} must be an int >= 0"
                        )
    if problems:
        raise ValueError(
            "result does not match the unified schema: " + "; ".join(problems)
        )
    return payload


class Session:
    """The stable entry point for everything this repo can run.

    The preferred construction is one validated options bundle::

        Session(options=ExecOptions(policy="paper", metrics=True))

    Every individual kwarg below keeps working as a **deprecated alias**
    (it warns once per process and routes through the same
    :func:`_normalize_options` site), so pre-ExecOptions callers and
    tests are untouched.  Passing ``options=`` together with individual
    kwargs raises.

    Args:
        policy: detection policy -- alias (``"paper"``,
            ``"control-data"``, ``"none"``), instance, or factory.
        engine: ``"functional"`` (fast interpreter) or ``"pipeline"``
            (cycle-level five-stage model).
        use_caches: route data accesses through the taint-carrying L1/L2
            hierarchy.
        metrics: ``True`` for a fresh :class:`MetricsRegistry`, or pass
            a registry to share one across sessions.  Counters accumulate
            across this session's runs.
        trace: ``True`` (ring only), a JSONL path, or a
            :class:`TraceConfig`.
        max_instructions: default per-run watchdog budget.
        taint_labels: run the taint plane in **label mode** -- every
            external-input copy-in is tagged with a provenance label
            (``read(fd=4) bytes 96..99``) and detection alerts carry the
            tainting input's byte ranges (``alert.provenance``, surfaced
            in ``to_json()["stats"]["provenance"]``).  Detection verdicts
            and statistics are identical to the default bit mode.
        defense: pluggable defense to attach to every run -- a registry
            name (``"taintedness"``, ``"shadow-stack"``, ``"pac"``) or a
            built :class:`repro.defenses.Detector`.  With the session's
            default ``policy`` the machine runs under the defense's own
            default policy (comparators run unprotected so the inline
            taintedness check cannot preempt them); an explicit policy
            overrides that.
        superblocks: enable the fused superblock dispatch tier
            (default on; results are byte-identical either way).  Not a
            legacy alias -- never warns.
        workers: default process-pool fan-out for campaigns and
            experiments.  Not a legacy alias.
        trace_out / trace_events: the flat trace spellings (the CLI's
            ``--trace-out``/``--trace-events``).  Not legacy aliases.
        options: an :class:`ExecOptions` (or a dict of its fields)
            carrying all of the above in one validated bundle.
    """

    def __init__(
        self,
        policy: Union[None, str, DetectionPolicy, Callable] = _UNSET,
        engine: str = _UNSET,
        use_caches: bool = _UNSET,
        metrics: Union[None, bool, MetricsRegistry] = _UNSET,
        trace: Union[None, bool, str, TraceConfig] = _UNSET,
        max_instructions: int = _UNSET,
        taint_labels: bool = _UNSET,
        defense: Union[None, str, Detector] = _UNSET,
        *,
        superblocks: bool = _UNSET,
        workers: int = _UNSET,
        trace_out: Optional[str] = _UNSET,
        trace_events: Union[None, str, Sequence] = _UNSET,
        options: Union[None, dict, ExecOptions] = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("policy", policy),
                ("engine", engine),
                ("use_caches", use_caches),
                ("metrics", metrics),
                ("trace", trace),
                ("max_instructions", max_instructions),
                ("taint_labels", taint_labels),
                ("defense", defense),
            )
            if value is not _UNSET
        }
        new = {
            name: value
            for name, value in (
                ("superblocks", superblocks),
                ("workers", workers),
                ("trace_out", trace_out),
                ("trace_events", trace_events),
            )
            if value is not _UNSET
        }
        opts = _normalize_options(options, legacy, new=new)
        #: The session's normalized :class:`ExecOptions` bundle.
        self.options = opts
        self.policy_spec = opts.policy
        self.defense = opts.defense
        self.engine = opts.engine
        self.use_caches = opts.use_caches
        self.taint_labels = opts.taint_labels
        self.superblocks = opts.superblocks
        self.workers = opts.workers
        metrics_value = opts.metrics
        if metrics_value is True:
            metrics_value = MetricsRegistry()
        elif metrics_value is False:
            metrics_value = None
        self.metrics: Optional[MetricsRegistry] = metrics_value
        self.trace = opts.trace_config()
        self.max_instructions = opts.max_instructions
        #: The most recent run's trace recorder (ring buffer inspection).
        self.last_trace: Optional[TraceRecorder] = None
        self._trace_paths_opened: set = set()

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------

    def _open_trace_stream(self):
        if self.trace is None or self.trace.path is None:
            return None
        # First run truncates; later runs of the same session append, so
        # one JSONL file can hold a whole session's stream.
        mode = "a" if self.trace.path in self._trace_paths_opened else "w"
        self._trace_paths_opened.add(self.trace.path)
        return open(self.trace.path, mode, encoding="utf-8")

    def _instrument(self, sim):
        """Attach observer + tracer to a machine; returns a finalizer.

        The finalizer (called with the finished result, or None) stops
        the wall timer, harvests post-run statistics, detaches all
        subscriptions, closes the trace stream, and stamps the metrics
        dump onto the result.
        """
        observer = None
        started = None
        if self.metrics is not None:
            observer = Observer(self.metrics).attach(sim)
            started = time.perf_counter()
        tracer = None
        stream = None
        if self.trace is not None:
            stream = self._open_trace_stream()
            tracer = TraceRecorder(
                events=self.trace.events,
                limit=self.trace.limit,
                stream=stream,
            ).attach(sim.events)
            self.last_trace = tracer

        def finalize(result=None) -> None:
            if observer is not None:
                self.metrics.timer("run.wall_seconds").add(
                    time.perf_counter() - started
                )
                observer.harvest(sim, getattr(result, "pstats", None))
                observer.detach()
            if tracer is not None:
                tracer.detach()
            if stream is not None:
                stream.close()
            if result is not None and self.metrics is not None:
                result.metrics = self.metrics.to_dict()

        return finalize

    # ------------------------------------------------------------------
    # run: single executions (replaces ad-hoc run_minic/run_executable)
    # ------------------------------------------------------------------

    #: ``run_*`` kwargs that are deprecated aliases for ExecOptions
    #: fields (``use_pipeline`` is the pre-ExecOptions engine spelling).
    _RUN_LEGACY = (
        "use_pipeline", "use_caches", "taint_labels", "max_instructions",
        "defense",
    )

    def run_executable(
        self,
        exe: Executable,
        policy: Union[None, str, DetectionPolicy] = None,
        *,
        options: Union[None, dict, ExecOptions] = None,
        **kwargs: Any,
    ) -> RunResult:
        """Run a built executable; returns a :class:`RunResult`.

        Keyword arguments (``stdin``, ``argv``, ``clients``,
        ``filesystem``, ``subscribers``, ``record_events``, ...) are the
        replay harness's.  Execution knobs come from the session's
        :class:`ExecOptions`; a per-call ``options=`` replaces them for
        this run, and the pre-ExecOptions per-call kwargs
        (``use_pipeline``, ``use_caches``, ``taint_labels``,
        ``max_instructions``, ``defense``) keep working as deprecated
        aliases.
        """
        legacy = {
            name: kwargs.pop(name)
            for name in self._RUN_LEGACY
            if name in kwargs
        }
        if legacy.get("defense", _UNSET) is None:
            # defense=None always meant "inherit the session default".
            legacy.pop("defense", None)
        new = {}
        if "superblocks" in kwargs:
            new["superblocks"] = kwargs.pop("superblocks")
        opts = _normalize_options(options, legacy, base=self.options, new=new)
        kwargs["max_instructions"] = opts.max_instructions
        kwargs["use_caches"] = opts.use_caches
        kwargs["use_pipeline"] = opts.engine == "pipeline"
        kwargs["taint_labels"] = opts.taint_labels
        kwargs["superblocks"] = opts.superblocks
        defense = opts.defense
        if policy is not None:
            resolved = resolve_policy(policy)
        elif defense is not None and opts.policy == "paper":
            # Let the replay harness pick the defense's default policy
            # (NullPolicy for the comparators).
            resolved = None
        else:
            resolved = resolve_policy(opts.policy)
        return _run_executable(
            exe, resolved, instrument=self._instrument, defense=defense,
            **kwargs
        )

    def run_minic(
        self,
        source: str,
        policy: Union[None, str, DetectionPolicy] = None,
        opt_level: int = 0,
        **kwargs: Any,
    ) -> RunResult:
        """Compile a MiniC program against the libc and run it.

        ``opt_level`` selects the MiniC backend: 0 is the legacy oracle
        codegen, 1 the IR optimization pipeline (same verdicts, fewer
        dynamic instructions).
        """
        return self.run_executable(
            build_program(source, opt_level=opt_level), policy, **kwargs
        )

    # ------------------------------------------------------------------
    # campaign: seeded fault injection (replaces raw FaultCampaign use)
    # ------------------------------------------------------------------

    def run_campaign(
        self,
        source: Optional[str] = None,
        *,
        builtin: Optional[str] = None,
        workload: Optional[Workload] = None,
        name: Optional[str] = None,
        stdin: bytes = b"",
        argv: Sequence[str] = (),
        schedule: Optional[Sequence] = None,
        options: Union[None, dict, ExecOptions] = None,
        **config_kwargs: Any,
    ) -> CampaignResult:
        """Run a fault-injection campaign; returns a
        :class:`CampaignResult`.

        Exactly one of ``source`` (MiniC text), ``builtin`` (workload
        name), or ``workload`` must be given.  ``config_kwargs`` feed
        :class:`CampaignConfig` (``seed``, ``trials``, ``recovery``,
        ``kinds``, ...).  Execution knobs (``engine``, ``use_caches``,
        ``taint_labels``, ``superblocks``, ``workers``) come from the
        session's :class:`ExecOptions` or a per-call ``options=``; the
        flat spellings keep working as deprecated aliases.
        ``workers=N`` runs the trials on the :mod:`repro.parallel`
        process pool (``0`` = one worker per core) with a byte-identical
        digest; the result then carries a ``stats.parallel`` summary.
        """
        given = [x is not None for x in (source, builtin, workload)]
        if sum(given) != 1:
            raise ValueError(
                "run_campaign needs exactly one of source=, builtin=, "
                "workload="
            )
        if builtin is not None:
            workload = builtin_workload(builtin)
        elif source is not None:
            workload = Workload(
                name=name or "<minic>",
                source=source,
                stdin=stdin,
                argv=tuple(argv),
            )
        legacy = {
            key: config_kwargs.pop(key)
            for key in ("engine", "use_caches", "taint_labels", "workers")
            if key in config_kwargs
        }
        new = {}
        if "superblocks" in config_kwargs:
            new["superblocks"] = config_kwargs.pop("superblocks")
        opts = _normalize_options(options, legacy, base=self.options, new=new)
        config_kwargs["engine"] = opts.engine
        config_kwargs["use_caches"] = opts.use_caches
        config_kwargs["taint_labels"] = opts.taint_labels
        config_kwargs["superblocks"] = opts.superblocks
        config_kwargs["workers"] = opts.workers
        config = CampaignConfig(**config_kwargs)

        finalizers = []

        def instrument(sim) -> None:
            # A rebuild (reuse_snapshots=False) brings a fresh machine;
            # move the observability wiring over to it.
            while finalizers:
                finalizers.pop()(None)
            finalizers.append(self._instrument(sim))

        needs_instrument = self.metrics is not None or self.trace is not None
        campaign = FaultCampaign(
            workload,
            config,
            schedule=schedule,
            instrument=instrument if needs_instrument else None,
            registry=self.metrics,
        )
        result = campaign.run()
        while finalizers:
            finalizers.pop()(None)
        if self.metrics is not None:
            reg = self.metrics
            reg.counter("campaign.runs").inc()
            reg.gauge("campaign.trials_per_second").set(
                round(result.trials_per_second, 2)
            )
            result.metrics = reg.to_dict()
        return result

    # ------------------------------------------------------------------
    # experiment: the paper's tables and figures (evalx facade)
    # ------------------------------------------------------------------

    def run_experiment(
        self,
        name: str,
        render: bool = True,
        workers: Optional[int] = None,
        *,
        options: Union[None, dict, ExecOptions] = None,
    ) -> ExperimentResult:
        """Run one paper artifact; returns an :class:`ExperimentResult`.

        ``name`` is an evalx artifact key (``fig1``, ``fig2``,
        ``table2``, ``table3``, ``table4``, ``sec54``, ``coverage``,
        ``matrix``).
        With ``render=True`` the paper-style text report is included.
        ``workers=N`` (a deprecated alias for
        ``options=ExecOptions(workers=N)``; the session's options supply
        the default) fans row-independent artifacts out to the
        :mod:`repro.parallel` process pool (``0`` = one per core);
        rendered tables are byte-identical to serial runs.  ``fig1``
        (static data) and ``sec54`` (wall-clock measurement) always run
        serially.  When the session has a registry, the workload runs
        harvest into it under the same metric names every other harness
        uses, plus an ``experiment.<name>.seconds`` timer.
        """
        from .evalx import experiments as ex

        adapters = {
            "fig1": self._exp_fig1,
            "fig2": self._exp_fig2,
            "table2": self._exp_table2,
            "table3": self._exp_table3,
            "table4": self._exp_table4,
            "sec54": self._exp_sec54,
            "coverage": self._exp_coverage,
            "matrix": self._exp_matrix,
        }
        if name not in adapters:
            raise ValueError(
                f"unknown experiment {name!r}; choose from {sorted(adapters)}"
            )
        legacy = {} if workers is None else {"workers": workers}
        opts = _normalize_options(options, legacy, base=self.options)
        workers = opts.workers
        timer = (
            self.metrics.timer(f"experiment.{name}.seconds").start()
            if self.metrics is not None
            else None
        )
        start = time.perf_counter()
        result = adapters[name](ex, workers)
        result.elapsed = time.perf_counter() - start
        if timer is not None:
            timer.stop()
        if render:
            result.report = {
                "fig1": ex.report_fig1,
                "fig2": ex.report_fig2,
                "table2": ex.report_table2,
                "table3": ex.report_table3,
                "table4": ex.report_table4,
                "sec54": ex.report_sec54,
                "coverage": ex.report_coverage_matrix,
                "matrix": ex.report_defense_matrix,
            }[name](workers=workers)
        if self.metrics is not None:
            result.metrics = self.metrics.to_dict()
        return result

    # -- per-artifact adapters ------------------------------------------

    def _exp_fig1(self, ex, workers: int = 1) -> ExperimentResult:
        data = ex.run_fig1()
        return ExperimentResult(
            name="fig1",
            data=data,
            stats={
                "memory_corruption_share_pct": round(data["memory_share"], 1),
                "advisory_classes": len(data["rows"]),
            },
        )

    def _exp_fig2(self, ex, workers: int = 1) -> ExperimentResult:
        records = ex.run_synthetic_detections(
            registry=self.metrics, workers=workers
        )
        detected = sum(1 for r in records if r.detected)
        return ExperimentResult(
            name="fig2",
            data=records,
            detected=detected > 0,
            stats={
                "scenarios": len(records),
                "detected": detected,
                "outcomes": {r.scenario: r.outcome for r in records},
            },
        )

    def _exp_table2(self, ex, workers: int = 1) -> ExperimentResult:
        data = ex.run_table2(registry=self.metrics, workers=workers)
        result = data["result"]
        return ExperimentResult(
            name="table2",
            data=data,
            detected=result.detected,
            stats={
                "detected": result.detected,
                "alert": str(result.alert) if result.alert else None,
                "uid_address": data["uid_address"],
                "unprotected_outcome": data["unprotected"].outcome,
            },
        )

    def _exp_table3(self, ex, workers: int = 1) -> ExperimentResult:
        rows = ex.run_table3(registry=self.metrics, workers=workers)
        alerts = sum(r.alerts for r in rows)
        return ExperimentResult(
            name="table3",
            data=rows,
            detected=alerts > 0,  # any alert here is a *false positive*
            stats={
                "workloads": len(rows),
                "instructions": sum(r.instructions for r in rows),
                "false_positives": alerts,
            },
        )

    def _exp_table4(self, ex, workers: int = 1) -> ExperimentResult:
        rows = ex.run_table4(workers=workers)
        return ExperimentResult(
            name="table4",
            data=rows,
            detected=any(r.detected for r in rows),
            stats={
                "scenarios": len(rows),
                "escaped": sum(1 for r in rows if not r.detected),
            },
        )

    def _exp_sec54(self, ex, workers: int = 1) -> ExperimentResult:
        # Always serial: these rows measure wall-clock overhead.
        rows = ex.run_sec54()
        return ExperimentResult(
            name="sec54",
            data=rows,
            stats={
                "workloads": len(rows),
                "extra_instructions": sum(
                    r.instructions_tracking - r.instructions_no_tracking
                    for r in rows
                ),
                "max_software_overhead_pct": round(
                    max(r.software_overhead_pct for r in rows), 4
                ),
            },
        )

    def _exp_coverage(self, ex, workers: int = 1) -> ExperimentResult:
        matrix = ex.run_coverage_matrix(workers=workers)
        detected = sum(1 for row in matrix if row["pointer-taintedness"])
        return ExperimentResult(
            name="coverage",
            data=matrix,
            detected=detected > 0,
            stats={
                "scenarios": len(matrix),
                "detected_by_paper_policy": detected,
                "detected_by_control_data": sum(
                    1 for row in matrix if row["control-data-only"]
                ),
            },
        )

    def _exp_matrix(self, ex, workers: int = 1) -> ExperimentResult:
        matrix = ex.run_defense_matrix(workers=workers, registry=self.metrics)
        summary = ex.matrix_summary(matrix)
        return ExperimentResult(
            name="matrix",
            data=matrix,
            detected=summary["detected"]["taintedness"] > 0,
            stats=dict(summary),
        )
