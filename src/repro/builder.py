"""The one internal builder for a wired Simulator + Kernel pair.

Before this module existed, three call sites constructed the machine with
three drifting keyword conventions (`attacks/replay.py`,
`fault/campaign.py`, and the `kernel/syscalls.py` docstring example) --
each repeating the same fragile three-step dance: build the kernel, build
the simulator with the kernel as ``syscall_handler``, then remember to
``kernel.attach(sim)`` (forgetting the attach leaves the process without
a stack or argv and is a classic source of silent drift).  Every harness
now routes through :func:`build_machine` so engine/watchdog/bus wiring
cannot diverge between the replay path, the fault-campaign path, and the
test helpers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .defenses.policy import DetectionPolicy
from .cpu.simulator import Simulator
from .kernel.filesystem import SimFileSystem
from .kernel.network import SimNetwork
from .kernel.syscalls import Kernel
from .isa.program import Executable

__all__ = ["build_machine"]


def build_machine(
    executable: Executable,
    policy: Optional[DetectionPolicy] = None,
    *,
    argv: Optional[Sequence[str]] = None,
    env: Optional[Sequence[str]] = None,
    stdin: bytes = b"",
    filesystem: Optional[SimFileSystem] = None,
    network: Optional[SimNetwork] = None,
    uid: int = 1000,
    taint_inputs: bool = True,
    use_caches: bool = False,
    taint_labels: bool = False,
    superblocks: bool = True,
) -> Tuple[Simulator, Kernel]:
    """Build a fully wired machine: kernel, simulator, attached process.

    Returns ``(sim, kernel)`` with the kernel installed as the syscall
    handler and the process image initialized (stack with argv/env, brk,
    registers).  The caller picks the engine afterwards: ``sim.run()``
    for the functional engine or ``Pipeline(sim).run()`` for the
    cycle-level model -- both drive the same machine state and event bus.

    ``taint_labels=True`` puts the machine's taint plane in label mode:
    every external-input copy-in gets a provenance label and detection
    exceptions carry the tainting input's byte ranges.

    ``superblocks=False`` disables the fused superblock dispatch tier
    (results are byte-identical either way; the toggle exists for
    benchmarking and digest-invariance tests).
    """
    kernel = Kernel(
        argv=argv,
        env=env,
        stdin=stdin,
        filesystem=filesystem,
        network=network,
        uid=uid,
        taint_inputs=taint_inputs,
    )
    sim = Simulator(
        executable,
        policy,
        syscall_handler=kernel,
        use_caches=use_caches,
        taint_labels=taint_labels,
        superblocks=superblocks,
    )
    kernel.attach(sim)
    return sim, kernel
