"""Superblock fusion: straight-line decoded runs as single closures.

The decode-once dispatch (:mod:`repro.cpu.dispatch`) already resolves
every static instruction to a zero-argument executor closure, but the
functional engine still pays full per-instruction accounting -- budget
check, bounds check, recent-pc append, three counter updates -- around
every single call.  This module fuses a straight-line run of executors
(a basic block / superblock keyed by its entry slot, discovered lazily
the first time the engine dispatches to it) into **one** generated
closure, so the engine pays the loop-exit checks and the instruction-mix
accounting once per block instead of once per instruction.

Two fusion flavours, chosen by classifying the block's mnemonics:

* **pure blocks** -- every instruction is an ALU/branch/jump executor
  that cannot raise and never observes ``stats.instructions`` (div-by-
  zero is guarded inside the binder, add/sub are masked, branches only
  compute a target).  The generated closure is a bare unrolled call
  sequence; the engine batches *all* accounting after the block returns.
* **sync blocks** -- the block contains at least one load, store, jr,
  jalr, syscall, break, or unknown executor.  Those can raise
  (``SecurityException``, ``MemoryFault``, ``SimulatorFault``) and
  observe ``stats.instructions`` (alert ``instruction_index``, label
  allocation, the profiler's syscall gap histogram), so the generated
  closure advances ``stats.instructions`` *before* each call -- exactly
  the order the unfused loop uses -- and the engine reconciles partial
  progress from that counter when an exception escapes mid-block.

Every closure is generated with its executors bound as default
arguments (LOAD_FAST at call time) and compiled once per block entry.

**Self-modifying code**: fused closures are derived from the immutable
predecoded program, the same source both engines execute from, so a
store into the text segment cannot change what either tier runs.  The
machine still reports text writes (:meth:`MachineState._on_text_write`)
and the cache drops every fused block, forcing re-fusion from the
decode on the next dispatch -- the invariant "no fused closure outlives
a text write" holds by construction, and results are preserved because
re-fusion reproduces the same composition.  For the same reason the
cache is **snapshot-safe**: checkpoint/rollback never needs to flush it
(see :mod:`repro.fault.checkpoint`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .machine import RECENT_PC_DEPTH

__all__ = [
    "MAX_SUPERBLOCK_LEN",
    "PURE_OPS",
    "TERMINATORS",
    "Superblock",
    "SuperblockCache",
    "build_superblock",
]

#: Upper bound on fused run length: bounds generated-code size and the
#: worst-case partial-progress reconciliation on a mid-block exception.
MAX_SUPERBLOCK_LEN = 64

#: Mnemonics whose executors end a superblock: they compute (or refuse
#: to compute) a non-fall-through next pc, or can halt the machine.
TERMINATORS = frozenset({
    "beq", "bne", "blez", "bgtz", "bltz", "bgez",
    "j", "jal", "jr", "jalr", "syscall", "break",
})

#: Mnemonics whose executors cannot raise and never observe
#: ``stats.instructions``: the whole block can run with zero per-op
#: accounting.  Branches/j/jal qualify (pure terminators); loads,
#: stores, jr/jalr (dereference checks), syscall, and break do not.
PURE_OPS = frozenset({
    "add", "addu", "sub", "subu", "or", "nor", "xor", "and",
    "andi", "addi", "addiu", "ori", "xori", "lui",
    "slt", "sltu", "slti", "sltiu",
    "sll", "srl", "sra", "sllv", "srlv", "srav",
    "mult", "multu", "div", "divu", "mfhi", "mflo",
    "beq", "bne", "blez", "bgtz", "bltz", "bgez", "j", "jal",
})


class Superblock:
    """One fused straight-line run, keyed by its entry slot index."""

    __slots__ = (
        "entry", "n", "pure", "fn", "pcs", "names", "klasses",
        "mix_names", "mix_classes", "loop_tail",
    )

    def __init__(
        self,
        entry: int,
        pure: bool,
        fn,
        pcs: Tuple[int, ...],
        names: Tuple[str, ...],
        klasses: Tuple[str, ...],
    ) -> None:
        self.entry = entry
        self.n = len(pcs)
        self.pure = pure
        #: The fused closure.  Pure blocks: ``fn(max_iters) ->
        #: (next_pc, iters)`` (self-iterating, see ``_compose_pure``).
        #: Sync blocks: ``fn() -> next_pc`` (single pass).
        self.fn = fn
        self.pcs = pcs
        #: Per-instruction mnemonics/classes, for partial reconciliation.
        self.names = names
        self.klasses = klasses
        #: Aggregated instruction mix in first-occurrence order, so
        #: batched counter updates preserve the insertion order the
        #: incremental loop would produce.
        self.mix_names = _aggregate(names)
        self.mix_classes = _aggregate(klasses)
        #: The last RECENT_PC_DEPTH pcs of a long self-loop burst
        #: (cyclic suffix ending at the terminator), precomputed so the
        #: engine can refill the recent-pc ring in one extend.
        repeats = (RECENT_PC_DEPTH - 1) // self.n + 1
        self.loop_tail = (pcs * repeats)[-RECENT_PC_DEPTH:]


def _aggregate(items: Tuple[str, ...]) -> Tuple[Tuple[str, int], ...]:
    counts: Dict[str, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    return tuple(counts.items())


def _compose_pure(ops: List, entry_pc: int) -> object:
    """Self-iterating unrolled closure for a pure block.

    ``fn(max_iters) -> (next_pc, iters)`` runs the block body repeatedly
    while the terminator branches back to the block's own entry -- the
    hot-loop shape -- paying exactly **one loop-exit check per
    iteration**.  Non-looping blocks exit after one pass.  ``max_iters``
    bounds the burst so the engine keeps its budget and wall-clock
    deadline cadence.
    """
    n = len(ops)
    params = ", ".join(
        [f"o{i}=_b[{i}]" for i in range(n)] + [f"_entry={entry_pc}"]
    )
    calls = "".join(f"        o{i}()\n" for i in range(n - 1))
    src = (
        f"def _fused(max_iters, {params}):\n"
        f"    i = 0\n"
        f"    while True:\n"
        f"{calls}"
        f"        next_pc = o{n - 1}()\n"
        f"        i += 1\n"
        f"        if next_pc != _entry or i >= max_iters:\n"
        f"            return next_pc, i\n"
    )
    namespace = {"_b": ops}
    exec(compile(src, "<superblock>", "exec"), namespace)
    return namespace["_fused"]


def _compose_sync(ops: List, stats) -> object:
    """Unrolled sequence that advances ``stats.instructions`` before each
    call, mirroring the unfused loop's increment-then-execute order so
    alert indices, label allocation, and exception reconciliation all see
    the exact per-instruction counter."""
    n = len(ops)
    params = ", ".join(
        ["_s=_stats"] + [f"o{i}=_b[{i}]" for i in range(n)]
    )
    lines = ["    n = _s.instructions\n"]
    for i in range(n - 1):
        lines.append(f"    _s.instructions = n + {i + 1}\n    o{i}()\n")
    lines.append(f"    _s.instructions = n + {n}\n    return o{n - 1}()\n")
    src = f"def _fused({params}):\n{''.join(lines)}"
    namespace = {"_b": ops, "_stats": stats}
    exec(compile(src, "<superblock>", "exec"), namespace)
    return namespace["_fused"]


def build_superblock(sim, entry: int) -> Superblock:
    """Fuse the straight-line run starting at slot ``entry``.

    Walks the predecoded mnemonic list to the first terminator (or the
    length cap, or the end of text), classifies the run, and compiles
    the fused closure.  Unknown mnemonics terminate the block and make
    it a sync block: their executors fault on execution, exactly like
    the unfused path.
    """
    from .dispatch import BINDERS  # local import: dispatch imports nothing here

    names = sim._names
    klasses = sim._klasses
    ops = sim._ops
    count = len(ops)
    base = sim._text_base
    slots = []
    idx = entry
    while idx < count and len(slots) < MAX_SUPERBLOCK_LEN:
        name = names[idx]
        slots.append(idx)
        if name in TERMINATORS or name not in BINDERS:
            break
        idx += 1
    block_ops = [ops[i] for i in slots]
    block_names = tuple(names[i] for i in slots)
    pure = all(nm in PURE_OPS for nm in block_names)
    pcs = tuple(base + 4 * i for i in slots)
    fn = (
        _compose_pure(block_ops, pcs[0])
        if pure
        else _compose_sync(block_ops, sim.stats)
    )
    return Superblock(
        entry=entry,
        pure=pure,
        fn=fn,
        pcs=pcs,
        names=block_names,
        klasses=tuple(klasses[i] for i in slots),
    )


class SuperblockCache:
    """Lazily populated entry-slot -> :class:`Superblock` map.

    Derived entirely from the immutable predecode, so snapshots never
    capture it and rollback never flushes it; a text-segment write
    clears it wholesale (SMC is rare enough that selective invalidation
    would be complexity without a workload).
    """

    __slots__ = ("blocks", "built", "invalidated", "hits")

    def __init__(self) -> None:
        self.blocks: Dict[int, Superblock] = {}
        #: Observability counters, harvested into metrics as
        #: ``superblock.{built,invalidated,hits}``.
        self.built = 0
        self.invalidated = 0
        self.hits = 0

    def lookup(self, sim, entry: int) -> Superblock:
        block = self.blocks.get(entry)
        if block is None:
            block = build_superblock(sim, entry)
            self.blocks[entry] = block
            self.built += 1
        return block

    def invalidate(self) -> None:
        """Drop every fused block (text-segment write observed)."""
        self.blocks.clear()
        self.invalidated += 1

    def info(self) -> Dict[str, int]:
        """Cache observability snapshot (serve health, metrics)."""
        return {
            "size": len(self.blocks),
            "built": self.built,
            "invalidated": self.invalidated,
            "hits": self.hits,
        }
