"""Execution statistics for the simulated processor.

Collected by both execution engines and consumed by the section 5.4
overhead benchmarks (instruction mix, taint activity, detection events) and
the Table 3 false-positive study (instructions executed, input bytes, alert
count).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ExecutionStats:
    """Counters accumulated over one simulated run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    jumps: int = 0
    syscalls: int = 0
    #: Instructions whose result carried at least one tainted byte.
    tainted_results: int = 0
    #: Dereference checks performed (one per load/store/JR under a policy).
    dereference_checks: int = 0
    #: Dereferences of tainted pointers, counted regardless of whether the
    #: active policy checks them.  On an unprotected machine this counts
    #: the wild accesses a successful attack performed.
    tainted_dereferences: int = 0
    #: Alerts raised by the detector.
    alerts: int = 0
    #: Bytes marked tainted by the kernel at the input boundary (s5.4's
    #: "software processing overhead" -- one shadow instruction per byte).
    input_bytes_tainted: int = 0
    #: Per-mnemonic execution counts.
    by_mnemonic: Counter = field(default_factory=Counter)
    #: Per-taint-class execution counts (alu/shift/and/compare/...).
    by_class: Counter = field(default_factory=Counter)

    def clone(self) -> "ExecutionStats":
        """Independent copy (checkpointing)."""
        copy = ExecutionStats()
        copy.restore(self)
        return copy

    def restore(self, other: "ExecutionStats") -> None:
        """Overwrite every counter with ``other``'s, in place.

        In-place because the execution engines capture the stats object (and
        its counters) in bound-executor closures: rollback must mutate the
        captured object, not swap it out.
        """
        self.instructions = other.instructions
        self.loads = other.loads
        self.stores = other.stores
        self.branches = other.branches
        self.jumps = other.jumps
        self.syscalls = other.syscalls
        self.tainted_results = other.tainted_results
        self.dereference_checks = other.dereference_checks
        self.tainted_dereferences = other.tainted_dereferences
        self.alerts = other.alerts
        self.input_bytes_tainted = other.input_bytes_tainted
        self.by_mnemonic.clear()
        self.by_mnemonic.update(other.by_mnemonic)
        self.by_class.clear()
        self.by_class.update(other.by_class)

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another run's counters into this one."""
        self.instructions += other.instructions
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.jumps += other.jumps
        self.syscalls += other.syscalls
        self.tainted_results += other.tainted_results
        self.dereference_checks += other.dereference_checks
        self.tainted_dereferences += other.tainted_dereferences
        self.alerts += other.alerts
        self.input_bytes_tainted += other.input_bytes_tainted
        self.by_mnemonic.update(other.by_mnemonic)
        self.by_class.update(other.by_class)

    @property
    def memory_operations(self) -> int:
        return self.loads + self.stores

    def taint_activity_ratio(self) -> float:
        """Fraction of instructions that produced a tainted result."""
        if not self.instructions:
            return 0.0
        return self.tainted_results / self.instructions

    def software_tainting_overhead(self) -> float:
        """Extra-instruction fraction if tainting one byte costs one
        instruction in the OS kernel (the paper's section 5.4 estimate,
        reported as 0.002%..0.2% for SPEC)."""
        if not self.instructions:
            return 0.0
        return self.input_bytes_tainted / self.instructions

    def summary(self) -> Dict[str, float]:
        """Flat dict for report tables."""
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "jumps": self.jumps,
            "syscalls": self.syscalls,
            "tainted_results": self.tainted_results,
            "dereference_checks": self.dereference_checks,
            "alerts": self.alerts,
            "input_bytes_tainted": self.input_bytes_tainted,
        }
