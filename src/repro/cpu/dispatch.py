"""Decode-once dispatch: per-instruction executor bindings.

The paper's prototype pays for taint checking *inside* an existing
SimpleScalar pipeline -- classification of an instruction (is it a load? a
store? which Table 1 taint rule applies?) happens in hardware decode, once.
The original reproduction instead re-classified every instruction through a
mnemonic ``if/elif`` cascade on every dynamic step.  This module restores
the hardware structure in interpreter form:

* every mnemonic has a **binder** registered in :data:`BINDERS` (the
  dispatch table, keyed by mnemonic);
* at image-load time :func:`bind_program` runs each decoded instruction
  through its binder once, producing a zero-argument **executor** closure
  with every static property -- operand register numbers, immediates,
  access sizes, branch targets, the applicable Table 1 taint rule, the
  policy knobs, the disassembly and source line used in alerts -- resolved
  at bind time;
* the execution engines then run ``next_pc = ops[(pc - text_base) >> 2]()``
  -- fetch is an index, dispatch is a bound call, and no per-step
  classification happens at all.

Both the functional engine and the five-stage pipeline execute through the
same bindings, so the ISA semantics, the Table 1 propagation rules and the
section 4.3 dereference checks have exactly one implementation.

Executor contract
-----------------
``op() -> next_pc``.  An executor applies the instruction's architectural
effects to the bound :class:`~repro.cpu.machine.MachineState` and returns
the next program counter.  It raises
:class:`~repro.defenses.alerts.SecurityException` when the detector marks the
instruction malicious, and :class:`~repro.cpu.machine.SimulatorFault` /
:class:`~repro.mem.tainted_memory.MemoryFault` on machine-level faults.
Per-step bookkeeping that is identical for every instruction (instruction
count, mnemonic/class mix, the recent-PC ring, retirement events) is done
by the engines; executors maintain only their class-specific counters.

Label flow
----------
Every binder captures ``flow = m.plane.flow`` at bind time: None in bit
mode, the :class:`~repro.taint.plane.TaintPlane` itself in label mode.
Label propagation mirrors the Table 1 taint rules but lives exclusively
inside the existing tainted slow-path blocks behind ``flow is not None``
guards, so bit mode executes byte-for-byte the same hot path as before
the label plane existed.  Flow calls receive the *pre-writeback* source
taint masks for gating, because a destination register may alias a source.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..defenses.alerts import KIND_JUMP, KIND_LOAD, KIND_STORE
from ..core.events import SyscallEnter, SyscallExit, TaintPropagated
from ..core.propagation import propagate_and
from ..taint.bits import WORD_TAINTED
from ..isa.instructions import Instr, LOAD_INFO, STORE_INFO
from .machine import MachineState, SimulatorFault

_MASK32 = 0xFFFFFFFF

#: A bound executor: applies one instruction's effects, returns next pc.
Executor = Callable[[], int]

#: A binder: specializes one decoded instruction at a fixed pc into an
#: executor closure over a machine's state.
Binder = Callable[[Instr, int, MachineState], Executor]

#: The dispatch table: mnemonic -> binder.
BINDERS: Dict[str, Binder] = {}


def binds(*names: str) -> Callable[[Binder], Binder]:
    """Register a binder for one or more mnemonics."""

    def register(binder: Binder) -> Binder:
        for name in names:
            BINDERS[name] = binder
        return binder

    return register


def bind_program(machine: MachineState) -> List[Executor]:
    """Predecode the whole text segment into executor bindings.

    Returns a list parallel to ``executable.instructions``.  Unknown
    mnemonics bind to an executor that faults on execution (matching the
    old engine, which only complained when such an instruction ran).
    """
    base = machine.executable.text_base
    return [
        BINDERS.get(instr.name, _bind_unknown)(instr, base + 4 * i, machine)
        for i, instr in enumerate(machine.executable.instructions)
    ]


def _signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _bind_unknown(instr: Instr, pc: int, m: MachineState) -> Executor:
    name = instr.name

    def op() -> int:
        raise SimulatorFault(f"unimplemented instruction {name}")

    return op


# ---------------------------------------------------------------------------
# loads / stores (section 4.3 detection points)
# ---------------------------------------------------------------------------

@binds(*LOAD_INFO)
def _bind_load(instr: Instr, pc: int, m: MachineState) -> Executor:
    size, signed = LOAD_INFO[instr.name]
    rs, rt, imm = instr.rs, instr.rt, instr.imm
    npc = (pc + 4) & _MASK32
    values, taints = m.regs.values, m.regs.taints
    stats = m.stats
    mem_read = m.mem_read
    deref = m.tainted_dereference
    disasm = instr.text or instr.name
    detail = m.executable.source_map.get(pc, "")
    track = m.policy.track_taint
    checked = m.policy.checks(KIND_LOAD)
    sign_bit = 1 << (8 * size - 1)
    extension = _MASK32 ^ ((1 << (8 * size)) - 1)
    bus = m.events
    taint_subs = bus.subscribers(TaintPropagated)
    flow = m.plane.flow

    def op() -> int:
        if checked:
            stats.dereference_checks += 1
        base = values[rs]
        base_taint = taints[rs]
        if base_taint:
            deref(KIND_LOAD, pc, disasm, detail, base, base_taint,
                  flow.reg_sid(rs) if flow is not None else 0)
        addr = (base + imm) & _MASK32
        value, mem_taint = mem_read(addr, size)
        taint = mem_taint
        if signed:
            if value & sign_bit:
                value |= extension
            # Sign extension derives the upper bytes from the loaded
            # value's top bit: replicate taint across the whole word.
            if taint:
                taint = WORD_TAINTED
        if not track:
            taint = 0
        if rt:
            values[rt] = value
            taints[rt] = taint
        stats.loads += 1
        if taint:
            stats.tainted_results += 1
            if flow is not None and rt:
                # Gate on the mask the read returned (authoritative even
                # when the bytes came from a dirty cache line), not the
                # sign-extension-replicated register mask.
                flow.on_load(rt, addr, size, mem_taint)
            if taint_subs:
                bus.emit(TaintPropagated(pc, instr, "reg", rt, taint))
        return npc

    return op


@binds(*STORE_INFO)
def _bind_store(instr: Instr, pc: int, m: MachineState) -> Executor:
    size = STORE_INFO[instr.name]
    size_mask = (1 << size) - 1
    rs, rt, imm = instr.rs, instr.rt, instr.imm
    npc = (pc + 4) & _MASK32
    values, taints = m.regs.values, m.regs.taints
    stats = m.stats
    mem_write = m.mem_write
    deref = m.tainted_dereference
    annotation = m.annotation_violation
    watchpoints = m.watchpoints
    disasm = instr.text or instr.name
    detail = m.executable.source_map.get(pc, "")
    track = m.policy.track_taint
    checked = m.policy.checks(KIND_STORE)
    bus = m.events
    taint_subs = bus.subscribers(TaintPropagated)
    flow = m.plane.flow

    def op() -> int:
        if checked:
            stats.dereference_checks += 1
        base = values[rs]
        base_taint = taints[rs]
        if base_taint:
            deref(KIND_STORE, pc, disasm, detail, base, base_taint,
                  flow.reg_sid(rs) if flow is not None else 0)
        addr = (base + imm) & _MASK32
        value = values[rt]
        store_taint = (taints[rt] & size_mask) if track else 0
        if store_taint:
            if len(watchpoints):
                annotation(pc, disasm, addr, size, store_taint,
                           flow.reg_sid(rt) if flow is not None else 0)
            if flow is not None:
                flow.on_store(addr, size, rt, store_taint)
            if taint_subs:
                bus.emit(TaintPropagated(pc, instr, "mem", addr, store_taint))
        mem_write(addr, size, value, store_taint)
        stats.stores += 1
        return npc

    return op


# ---------------------------------------------------------------------------
# branches (compare class: untaint operands per Table 1)
# ---------------------------------------------------------------------------

def _branch_binder(condition: Callable[[int, int], bool], untaints_rt: bool):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rs, rt = instr.rs, instr.rt
        npc = (pc + 4) & _MASK32
        taken = (pc + 4 + (instr.imm << 2)) & _MASK32
        values, taints = m.regs.values, m.regs.taints
        stats = m.stats
        untaint = m.policy.track_taint and m.policy.untaint_on_compare

        def op() -> int:
            stats.branches += 1
            rs_val = values[rs]
            rt_val = values[rt]
            if untaint:
                if rs:
                    taints[rs] = 0
                if untaints_rt and rt:
                    taints[rt] = 0
            return taken if condition(rs_val, rt_val) else npc

        return op

    return bind


BINDERS["beq"] = _branch_binder(lambda a, b: a == b, untaints_rt=True)
BINDERS["bne"] = _branch_binder(lambda a, b: a != b, untaints_rt=True)
BINDERS["blez"] = _branch_binder(lambda a, b: _signed(a) <= 0, untaints_rt=False)
BINDERS["bgtz"] = _branch_binder(lambda a, b: _signed(a) > 0, untaints_rt=False)
BINDERS["bltz"] = _branch_binder(lambda a, b: _signed(a) < 0, untaints_rt=False)
BINDERS["bgez"] = _branch_binder(lambda a, b: _signed(a) >= 0, untaints_rt=False)


# ---------------------------------------------------------------------------
# jumps (JR/JALR are the code-pointer detection points)
# ---------------------------------------------------------------------------

@binds("j")
def _bind_j(instr: Instr, pc: int, m: MachineState) -> Executor:
    target = instr.target
    stats = m.stats

    def op() -> int:
        stats.jumps += 1
        return target

    return op


@binds("jal")
def _bind_jal(instr: Instr, pc: int, m: MachineState) -> Executor:
    target = instr.target
    link = (pc + 4) & _MASK32
    values, taints = m.regs.values, m.regs.taints
    stats = m.stats

    def op() -> int:
        stats.jumps += 1
        values[31] = link
        taints[31] = 0
        return target

    return op


@binds("jr")
def _bind_jr(instr: Instr, pc: int, m: MachineState) -> Executor:
    rs = instr.rs
    values, taints = m.regs.values, m.regs.taints
    stats = m.stats
    deref = m.tainted_dereference
    disasm = instr.text or instr.name
    detail = m.executable.source_map.get(pc, "")
    checked = m.policy.checks(KIND_JUMP)
    flow = m.plane.flow

    def op() -> int:
        stats.jumps += 1
        target = values[rs]
        taint = taints[rs]
        if checked:
            stats.dereference_checks += 1
        if taint:
            deref(KIND_JUMP, pc, disasm, detail, target, taint,
                  flow.reg_sid(rs) if flow is not None else 0)
        return target

    return op


@binds("jalr")
def _bind_jalr(instr: Instr, pc: int, m: MachineState) -> Executor:
    rs, rd = instr.rs, instr.rd
    link = (pc + 4) & _MASK32
    values, taints = m.regs.values, m.regs.taints
    stats = m.stats
    deref = m.tainted_dereference
    disasm = instr.text or instr.name
    detail = m.executable.source_map.get(pc, "")
    checked = m.policy.checks(KIND_JUMP)
    flow = m.plane.flow

    def op() -> int:
        stats.jumps += 1
        target = values[rs]
        taint = taints[rs]
        if checked:
            stats.dereference_checks += 1
        if taint:
            deref(KIND_JUMP, pc, disasm, detail, target, taint,
                  flow.reg_sid(rs) if flow is not None else 0)
        if rd:
            values[rd] = link
            taints[rd] = 0
        return target

    return op


# ---------------------------------------------------------------------------
# system
# ---------------------------------------------------------------------------

@binds("syscall")
def _bind_syscall(instr: Instr, pc: int, m: MachineState) -> Executor:
    npc = (pc + 4) & _MASK32
    stats = m.stats
    values = m.regs.values
    bus = m.events
    enter_subs = bus.subscribers(SyscallEnter)
    exit_subs = bus.subscribers(SyscallExit)

    def op() -> int:
        stats.syscalls += 1
        handler = m.syscall_handler
        if handler is None:
            raise SimulatorFault(f"syscall at {pc:#x} with no kernel attached")
        if enter_subs or exit_subs:
            number = values[2]  # $v0
            if enter_subs:
                bus.emit(SyscallEnter(pc, number))
            handler(m)
            if exit_subs:
                bus.emit(SyscallExit(pc, number, values[2]))
        else:
            handler(m)
        return npc

    return op


@binds("break")
def _bind_break(instr: Instr, pc: int, m: MachineState) -> Executor:
    def op() -> int:
        raise SimulatorFault(f"break instruction at {pc:#x}")

    return op


# ---------------------------------------------------------------------------
# ALU: Table 1 taint rules, resolved to the applicable rule at bind time
# ---------------------------------------------------------------------------

def _alu_writeback(m: MachineState, instr: Instr, pc: int):
    """Shared capture bundle for ALU binders.

    Returns ``(values, taints, stats, track, emit_tainted, flow)`` where
    ``emit_tainted(dest, taint)`` publishes a TaintPropagated event when
    anyone listens (engines count ``tainted_results`` inline) and ``flow``
    is the plane's label-flow hook (None in bit mode).
    """
    values, taints = m.regs.values, m.regs.taints
    stats = m.stats
    track = m.policy.track_taint
    bus = m.events
    taint_subs = bus.subscribers(TaintPropagated)

    def emit_tainted(dest: int, taint: int, kind: str = "reg") -> None:
        if taint_subs:
            bus.emit(TaintPropagated(pc, instr, kind, dest, taint))

    return values, taints, stats, track, emit_tainted, m.plane.flow


def _r3_default_binder(compute: Callable[[int, int], int]):
    """R-type op with the default Table 1 rule: OR the source taints."""

    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        npc = (pc + 4) & _MASK32
        values, taints, stats, track, emit_tainted, flow = _alu_writeback(
            m, instr, pc
        )

        def op() -> int:
            result = compute(values[rs], values[rt])
            if track:
                ta = taints[rs]
                tb = taints[rt]
                taint = ta | tb
            else:
                taint = 0
            if rd:
                values[rd] = result
                taints[rd] = taint
                if taint:
                    stats.tainted_results += 1
                    if flow is not None:
                        flow.on_alu(rd, rs, ta, rt, tb)
                    emit_tainted(rd, taint)
            return npc

        return op

    return bind


BINDERS["add"] = BINDERS["addu"] = _r3_default_binder(
    lambda a, b: (a + b) & _MASK32
)
BINDERS["sub"] = BINDERS["subu"] = _r3_default_binder(
    lambda a, b: (a - b) & _MASK32
)
BINDERS["or"] = _r3_default_binder(lambda a, b: a | b)
BINDERS["nor"] = _r3_default_binder(lambda a, b: ~(a | b) & _MASK32)


@binds("xor")
def _bind_xor(instr: Instr, pc: int, m: MachineState) -> Executor:
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    npc = (pc + 4) & _MASK32
    values, taints, stats, track, emit_tainted, flow = _alu_writeback(
        m, instr, pc
    )
    # XOR r,s,s is the compiler zero idiom: the result is a clean constant.
    zero_idiom = track and m.policy.untaint_xor_idiom and rs == rt

    def op() -> int:
        result = values[rs] ^ values[rt]
        if zero_idiom or not track:
            taint = 0
        else:
            ta = taints[rs]
            tb = taints[rt]
            taint = ta | tb
        if rd:
            values[rd] = result
            taints[rd] = taint
            if taint:
                stats.tainted_results += 1
                if flow is not None:
                    flow.on_alu(rd, rs, ta, rt, tb)
                emit_tainted(rd, taint)
        return npc

    return op


@binds("and")
def _bind_and(instr: Instr, pc: int, m: MachineState) -> Executor:
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    npc = (pc + 4) & _MASK32
    values, taints, stats, track, emit_tainted, flow = _alu_writeback(
        m, instr, pc
    )
    and_rule = track and m.policy.untaint_and_zero

    def op() -> int:
        rs_val = values[rs]
        rt_val = values[rt]
        result = rs_val & rt_val
        rs_t = taints[rs]
        rt_t = taints[rt]
        if not track:
            taint = 0
        elif rs_t | rt_t:
            if and_rule:
                taint = propagate_and(rs_t, rs_val, rt_t, rt_val)
            else:
                taint = rs_t | rt_t
        else:
            taint = 0
        if rd:
            values[rd] = result
            taints[rd] = taint
            if taint:
                stats.tainted_results += 1
                if flow is not None:
                    flow.on_alu(rd, rs, rs_t, rt, rt_t)
                emit_tainted(rd, taint)
        return npc

    return op


@binds("andi")
def _bind_andi(instr: Instr, pc: int, m: MachineState) -> Executor:
    rs, rt, imm = instr.rs, instr.rt, instr.imm
    npc = (pc + 4) & _MASK32
    values, taints, stats, track, emit_tainted, flow = _alu_writeback(
        m, instr, pc
    )
    and_rule = track and m.policy.untaint_and_zero

    def op() -> int:
        rs_val = values[rs]
        rs_t = taints[rs] if track else 0
        if rs_t and and_rule:
            taint = propagate_and(rs_t, rs_val, 0, imm)
        else:
            taint = rs_t
        if rt:
            values[rt] = rs_val & imm
            taints[rt] = taint
            if taint:
                stats.tainted_results += 1
                if flow is not None:
                    flow.on_unary(rt, rs)
                emit_tainted(rt, taint)
        return npc

    return op


def _itype_default_binder(compute: Callable[[int, int], int]):
    """I-type op whose result inherits the source register's taint."""

    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rs, rt, imm = instr.rs, instr.rt, instr.imm
        npc = (pc + 4) & _MASK32
        values, taints, stats, track, emit_tainted, flow = _alu_writeback(
            m, instr, pc
        )

        def op() -> int:
            result = compute(values[rs], imm)
            taint = taints[rs] if track else 0
            if rt:
                values[rt] = result
                taints[rt] = taint
                if taint:
                    stats.tainted_results += 1
                    if flow is not None:
                        flow.on_unary(rt, rs)
                    emit_tainted(rt, taint)
            return npc

        return op

    return bind


BINDERS["addi"] = BINDERS["addiu"] = _itype_default_binder(
    lambda a, imm: (a + imm) & _MASK32
)
BINDERS["ori"] = _itype_default_binder(lambda a, imm: a | imm)
BINDERS["xori"] = _itype_default_binder(lambda a, imm: a ^ imm)


@binds("lui")
def _bind_lui(instr: Instr, pc: int, m: MachineState) -> Executor:
    rt = instr.rt
    result = (instr.imm << 16) & _MASK32
    npc = (pc + 4) & _MASK32
    values, taints = m.regs.values, m.regs.taints

    def op() -> int:
        if rt:
            values[rt] = result
            taints[rt] = 0
        return npc

    return op


def _compare_r3_binder(signed: bool):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        npc = (pc + 4) & _MASK32
        values, taints = m.regs.values, m.regs.taints
        untaint = m.policy.track_taint and m.policy.untaint_on_compare

        def op() -> int:
            rs_val = values[rs]
            rt_val = values[rt]
            if signed:
                result = 1 if _signed(rs_val) < _signed(rt_val) else 0
            else:
                result = 1 if rs_val < rt_val else 0
            if untaint:
                if rs:
                    taints[rs] = 0
                if rt:
                    taints[rt] = 0
            if rd:
                values[rd] = result
                taints[rd] = 0
            return npc

        return op

    return bind


BINDERS["slt"] = _compare_r3_binder(signed=True)
BINDERS["sltu"] = _compare_r3_binder(signed=False)


def _compare_imm_binder(signed: bool):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rs, rt = instr.rs, instr.rt
        imm = instr.imm if signed else instr.imm & _MASK32
        npc = (pc + 4) & _MASK32
        values, taints = m.regs.values, m.regs.taints
        untaint = m.policy.track_taint and m.policy.untaint_on_compare

        def op() -> int:
            rs_val = values[rs]
            if signed:
                result = 1 if _signed(rs_val) < imm else 0
            else:
                result = 1 if rs_val < imm else 0
            if untaint and rs:
                taints[rs] = 0
            if rt:
                values[rt] = result
                taints[rt] = 0
            return npc

        return op

    return bind


BINDERS["slti"] = _compare_imm_binder(signed=True)
BINDERS["sltiu"] = _compare_imm_binder(signed=False)


# ---------------------------------------------------------------------------
# shifts (Table 1 shift rule: taint spreads one byte along the direction)
# ---------------------------------------------------------------------------

def _shift_const_binder(kind: str):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rd, rt, shamt = instr.rd, instr.rt, instr.shamt
        npc = (pc + 4) & _MASK32
        values, taints, stats, track, emit_tainted, flow = _alu_writeback(
            m, instr, pc
        )
        left = kind == "sll"
        arith = kind == "sra"

        def op() -> int:
            rt_val = values[rt]
            if left:
                result = (rt_val << shamt) & _MASK32
            elif arith:
                result = (_signed(rt_val) >> shamt) & _MASK32
            else:
                result = rt_val >> shamt
            if not track:
                taint = 0
            else:
                taint = taints[rt]
                if taint and shamt:
                    if left:
                        taint = (taint | (taint << 1)) & WORD_TAINTED
                    else:
                        taint = taint | (taint >> 1)
            if rd:
                values[rd] = result
                taints[rd] = taint
                if taint:
                    stats.tainted_results += 1
                    if flow is not None:
                        flow.on_unary(rd, rt)
                    emit_tainted(rd, taint)
            return npc

        return op

    return bind


BINDERS["sll"] = _shift_const_binder("sll")
BINDERS["srl"] = _shift_const_binder("srl")
BINDERS["sra"] = _shift_const_binder("sra")


def _shift_var_binder(kind: str):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        npc = (pc + 4) & _MASK32
        values, taints, stats, track, emit_tainted, flow = _alu_writeback(
            m, instr, pc
        )
        left = kind == "sllv"
        arith = kind == "srav"

        def op() -> int:
            shamt = values[rs] & 0x1F
            rt_val = values[rt]
            if left:
                result = (rt_val << shamt) & _MASK32
            elif arith:
                result = (_signed(rt_val) >> shamt) & _MASK32
            else:
                result = rt_val >> shamt
            if not track:
                taint = 0
            else:
                ts = taints[rs]
                tt = taints[rt]
                if ts:
                    # A tainted shift amount taints the whole result: the
                    # attacker controls where every bit lands.
                    taint = WORD_TAINTED
                else:
                    taint = tt
                    if taint:
                        if left:
                            taint = (taint | (taint << 1)) & WORD_TAINTED
                        else:
                            taint = taint | (taint >> 1)
            if rd:
                values[rd] = result
                taints[rd] = taint
                if taint:
                    stats.tainted_results += 1
                    if flow is not None:
                        flow.on_alu(rd, rs, ts, rt, tt)
                    emit_tainted(rd, taint)
            return npc

        return op

    return bind


BINDERS["sllv"] = _shift_var_binder("sllv")
BINDERS["srlv"] = _shift_var_binder("srlv")
BINDERS["srav"] = _shift_var_binder("srav")


# ---------------------------------------------------------------------------
# multiply / divide (results land in HI/LO; taint collapses to the word)
# ---------------------------------------------------------------------------

def _muldiv_binder(kind: str):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rs, rt = instr.rs, instr.rt
        npc = (pc + 4) & _MASK32
        regs = m.regs
        values, taints, stats, track, emit_tainted, flow = _alu_writeback(
            m, instr, pc
        )

        def op() -> int:
            rs_val = values[rs]
            rt_val = values[rt]
            if kind == "mult":
                product = (
                    _signed(rs_val) * _signed(rt_val) & 0xFFFFFFFFFFFFFFFF
                )
                lo, hi = product & _MASK32, product >> 32 & _MASK32
            elif kind == "multu":
                product = rs_val * rt_val
                lo, hi = product & _MASK32, product >> 32 & _MASK32
            else:
                if rt_val == 0:
                    quotient, remainder = 0, rs_val  # MIPS: undefined
                elif kind == "div":
                    a, b = _signed(rs_val), _signed(rt_val)
                    quotient = int(a / b)  # C-style truncation toward zero
                    remainder = a - quotient * b
                else:
                    quotient, remainder = rs_val // rt_val, rs_val % rt_val
                lo, hi = quotient & _MASK32, remainder & _MASK32
            # Multiplication/division mix every source byte into every
            # result byte: collapse taint across the whole double word.
            if track:
                ta = taints[rs]
                tb = taints[rt]
                taint = WORD_TAINTED if (ta | tb) else 0
            else:
                taint = 0
            regs.lo = lo
            regs.hi = hi
            regs.lo_taint = taint
            regs.hi_taint = taint
            if taint:
                stats.tainted_results += 1
                if flow is not None:
                    flow.on_hilo(rs, ta, rt, tb)
                emit_tainted(0, taint, "hilo")
            return npc

        return op

    return bind


for _name in ("mult", "multu", "div", "divu"):
    BINDERS[_name] = _muldiv_binder(_name)


def _movehl_binder(which: str):
    def bind(instr: Instr, pc: int, m: MachineState) -> Executor:
        rd = instr.rd
        npc = (pc + 4) & _MASK32
        regs = m.regs
        values, taints, stats, track, emit_tainted, flow = _alu_writeback(
            m, instr, pc
        )
        lo = which == "lo"

        def op() -> int:
            if lo:
                result = regs.lo
                taint = regs.lo_taint if track else 0
            else:
                result = regs.hi
                taint = regs.hi_taint if track else 0
            if rd:
                values[rd] = result
                taints[rd] = taint
                if taint:
                    stats.tainted_results += 1
                    if flow is not None:
                        flow.on_from_hilo(rd)
                    emit_tainted(rd, taint)
            return npc

        return op

    return bind


BINDERS["mflo"] = _movehl_binder("lo")
BINDERS["mfhi"] = _movehl_binder("hi")
