"""Five-stage in-order pipeline model with retirement-time exceptions.

The paper's Figure 3 places the jump-target taint check after the ID/EX
stage, the load/store address check after EX/MEM, and raises the actual
security exception only when the *marked-malicious* instruction retires.
This module reproduces that structure on top of the shared execution core:
the same :class:`~repro.cpu.machine.MachineState` and the same predecoded
executor bindings (:mod:`repro.cpu.dispatch`) that the functional engine
drives, so both engines have exactly one implementation of the ISA
semantics, Table 1 propagation, and the section 4.3 checks:

* instructions flow through IF -> ID -> EX -> MEM -> WB, one stage per cycle;
* architectural effects (and the taint checks) are applied when an
  instruction reaches its EX occupancy -- the machine is in-order and never
  executes speculatively past an unresolved control transfer, so program
  order is preserved;
* a detected tainted dereference *marks* the instruction and drains the
  pipeline; the :class:`~repro.defenses.alerts.SecurityException` is raised
  only on the cycle the marked instruction retires, exactly like the paper's
  retirement-stage exception;
* control transfers stall fetch until they execute (no branch prediction),
  which yields a simple, honest CPI model for the overhead study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..defenses.alerts import Alert, SecurityException
from ..isa.instructions import Instr
from .machine import ExecutionLimit
from .simulator import Simulator

#: Pipeline stage names in flow order.
STAGES = ("IF", "ID", "EX", "MEM", "WB")

#: Instruction classes that stall fetch until resolved.
_CONTROL_CLASSES = frozenset({"branch", "jump", "jumpreg"})


@dataclass
class _Entry:
    """One in-flight instruction."""

    pc: int
    instr: Instr
    stage: int = 0  # index into STAGES
    executed: bool = False
    alert: Optional[Alert] = None
    #: Stage at which the taint check flagged this instruction
    #: ("ID/EX" for jump-register targets, "EX/MEM" for loads/stores).
    detect_stage: str = ""


@dataclass
class PipelineStats:
    """Cycle-level counters (supplementing the functional ExecutionStats)."""

    cycles: int = 0
    retired: int = 0
    fetch_stalls: int = 0
    drain_cycles: int = 0

    @property
    def cpi(self) -> float:
        return self.cycles / self.retired if self.retired else 0.0


class Pipeline:
    """Drives a :class:`Simulator` through a cycle-accurate 5-stage model.

    The pipeline holds no architectural state of its own: registers,
    memory, taint, statistics, and the event bus all live in the shared
    machine state, and instruction effects are applied through the same
    bound executors the functional engine uses (via ``simulator.step()``
    at EX occupancy).  Event ordering is therefore identical to the
    functional engine's; the pipeline only adds cycle accounting and the
    retirement-delayed security exception.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.sim = simulator
        self.pstats = PipelineStats()
        self._inflight: List[_Entry] = []
        self._draining = False
        #: Fetch cursor; runs ahead of the simulator's execution cursor and
        #: resynchronizes after every control transfer or syscall.
        self._fetch_pc = simulator.pc

    # ------------------------------------------------------------------

    @property
    def halted(self) -> bool:
        return self.sim.halted and not self._inflight

    def run(self, max_cycles: int = 200_000_000) -> int:
        """Run to process exit; returns exit status.

        Raises :class:`SecurityException` on the retirement cycle of a
        marked-malicious instruction, and
        :class:`~repro.cpu.machine.ExecutionLimit` when the cycle budget or
        a machine-level watchdog limit (instruction budget / wall-clock
        deadline armed via ``sim.arm_watchdog``) trips -- the same guard
        the functional engine enforces, so a budget means one thing
        regardless of engine.
        """
        sim = self.sim
        while not self.halted:
            if self.pstats.cycles >= max_cycles:
                raise ExecutionLimit(
                    f"exceeded {max_cycles} cycles at pc={sim.pc:#x}",
                    reason="cycles",
                    pc=sim.pc,
                    instructions=sim.stats.instructions,
                    cycles=self.pstats.cycles,
                )
            sim.enforce_watchdog()
            self.cycle()
        return self.sim.exit_status or 0

    def cycle(self) -> None:
        """Advance the machine by one clock cycle."""
        self.pstats.cycles += 1

        # Retire from WB.  A marked instruction raises here -- this is the
        # paper's retirement-stage security exception.
        if self._inflight and self._inflight[0].stage == len(STAGES) - 1:
            entry = self._inflight.pop(0)
            self.pstats.retired += 1
            if entry.alert is not None:
                # The exception flushes the pipe: younger (squashed)
                # instructions are discarded.
                self._inflight.clear()
                self._draining = False
                raise SecurityException(entry.alert)

        # Advance remaining entries one stage (in-order, no structural
        # hazards modelled: each stage holds at most one instruction).
        limit = len(STAGES) - 1
        previous_stage = len(STAGES)
        for entry in self._inflight:
            if entry.stage + 1 < previous_stage:
                entry.stage += 1
            previous_stage = entry.stage
            if entry.stage >= 2 and not entry.executed and not self._draining:
                # While draining behind a marked-malicious instruction,
                # younger in-flight instructions are squashed: they advance
                # stages but never execute or retire.
                self._execute(entry)

        # Fetch a new instruction unless stalled.
        if self._draining or self.sim.halted:
            self.pstats.drain_cycles += 1
            return
        if self._fetch_blocked():
            self.pstats.fetch_stalls += 1
            return
        pc = self._fetch_pc
        instr = self.sim.fetch(pc)
        self._inflight.append(_Entry(pc=pc, instr=instr))
        if instr.klass not in _CONTROL_CLASSES and instr.klass != "system":
            self._fetch_pc = (pc + 4) & 0xFFFFFFFF
        # Control transfers and syscalls leave the cursor stale; it is
        # resynchronized when they execute (see _execute).

    # ------------------------------------------------------------------

    def _fetch_blocked(self) -> bool:
        """Fetch stalls while an unresolved control transfer is in flight."""
        if len(self._inflight) >= len(STAGES):
            return True
        for entry in self._inflight:
            if not entry.executed and entry.instr.klass in _CONTROL_CLASSES:
                return True
            if not entry.executed and entry.instr.klass == "system":
                return True  # syscalls serialize the pipe
        return False

    def _execute(self, entry: _Entry) -> None:
        """Apply architectural effects when the entry reaches EX.

        The underlying functional simulator executes strictly in program
        order, so the entry's PC always matches the simulator's.
        """
        assert entry.pc == self.sim.pc, (
            f"pipeline out of order: entry {entry.pc:#x} vs sim {self.sim.pc:#x}"
        )
        try:
            self.sim.step()
        except SecurityException as exc:
            entry.alert = exc.alert
            entry.detect_stage = (
                "ID/EX" if exc.alert.kind == "jump" else "EX/MEM"
            )
            # Mark malicious and drain: no younger instruction is fetched,
            # the exception fires when this entry retires.
            self._draining = True
        entry.executed = True
        if entry.instr.klass in _CONTROL_CLASSES or entry.instr.klass == "system":
            self._fetch_pc = self.sim.pc
