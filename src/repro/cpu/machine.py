"""Unified machine state shared by the functional and pipeline engines.

:class:`MachineState` owns everything architectural about one simulated
process: registers, memory (optionally behind the taint-carrying cache
hierarchy), the program counter, execution statistics, the section 5.3
watchpoint annotations, the detector, and the structured
:class:`~repro.core.events.EventBus` the engines publish to.  The
functional engine (:class:`repro.cpu.simulator.Simulator`) and the
five-stage pipeline (:class:`repro.cpu.pipeline.Pipeline`) both drive this
state through the same table-bound executor functions
(:mod:`repro.cpu.dispatch`), so there is exactly one implementation of the
ISA's semantics, the Table 1 taint-propagation rules, and the section 4.3
dereference checks.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.annotations import WatchpointSet
from ..core.events import EventBus, TaintedDereference
from ..defenses.alerts import (
    Alert,
    KIND_ANNOTATION,
    SecurityException,
)
from ..defenses.policy import DetectionPolicy, PointerTaintPolicy
from ..defenses.taintedness import TaintednessDetector
from ..isa.program import Executable
from ..mem.cache import CacheHierarchy
from ..mem.layout import STACK_TOP
from ..mem.registers import RegisterFile
from ..mem.tainted_memory import TaintedMemory
from ..taint.bits import WORD_TAINTED
from ..taint.plane import MODE_BIT, MODE_LABEL, TaintPlane
from .stats import ExecutionStats

_MASK32 = 0xFFFFFFFF

#: Depth of the always-on recent-PC diagnostic ring.
RECENT_PC_DEPTH = 32


class ExecutionLimit(RuntimeError):
    """Raised when a run exceeds an execution limit (runaway guard).

    A structured outcome rather than a hang: ``reason`` says which limit
    tripped (``"instructions"``, ``"wallclock"``, or the pipeline's
    ``"cycles"``), and ``pc``/``instructions`` carry the partial progress
    the watchdog observed, so fault-injection campaigns can classify a
    wedged trial and still report statistics for it.
    """

    def __init__(
        self,
        message: str,
        reason: str = "instructions",
        pc: int = 0,
        instructions: int = 0,
        cycles: int = 0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.pc = pc
        self.instructions = instructions
        self.cycles = cycles


class SimulatorFault(Exception):
    """Raised on machine-level faults (unaligned access, bad PC...).

    On an unprotected machine a successful memory-corruption attack often
    ends in one of these instead of a detector alert -- that distinction is
    what the coverage benchmarks report.
    """


@dataclass(frozen=True)
class MachineSnapshot:
    """An immutable checkpoint of one machine's architectural state.

    Produced by :meth:`MachineState.snapshot`; cheap to hold and to restore
    repeatedly, which is what lets a fault campaign fork one golden run
    into hundreds of fault trials without rebuilding the simulator.
    """

    pc: int
    halted: bool
    exit_status: Optional[int]
    regs: Tuple
    memory: Tuple[Dict[int, bytes], int]
    #: All shadow-taint state (memory taint pages, register taint masks,
    #: and in label mode the provenance sidecars), captured once via
    #: ``TaintPlane.snapshot()``.
    taint: Tuple
    caches: Optional[Tuple]
    stats: ExecutionStats
    recent_pcs: Tuple[int, ...]
    alerts: Tuple
    watchpoints: Tuple


@dataclass(frozen=True)
class MachineCowSnapshot:
    """A delta checkpoint: eager scalars plus a live COW page capture.

    Produced by :meth:`MachineState.snapshot_cow`.  The scalar machine
    state (registers, PC, stats, caches...) is small and copied eagerly
    exactly like :class:`MachineSnapshot`; the page-sized state (memory
    data, shadow taint, label sidecar) lives in the shared
    :class:`~repro.mem.cow.CowCapture`, which the memory hot paths fill
    copy-on-write so :meth:`MachineState.restore_cow` only rewrites
    dirtied pages.  Valid for delta restore only while its capture is
    still the machine's active one; once displaced the capture degrades
    to a completed full snapshot and restore falls back to the legacy
    path (see :mod:`repro.mem.cow`).
    """

    pc: int
    halted: bool
    exit_status: Optional[int]
    regs: Tuple
    caches: Optional[Tuple]
    stats: ExecutionStats
    recent_pcs: Tuple[int, ...]
    alerts: Tuple
    watchpoints: Tuple
    #: Shared delta capture holding baselines + dirty/fresh sets.
    cow: object = None


class MachineState:
    """Architectural state of one simulated process.

    Args:
        executable: the program image to load.
        policy: detection policy (defaults to the paper's pointer-taintedness
            policy).
        syscall_handler: callable invoked on ``syscall`` instructions with
            the machine as argument (normally a :class:`repro.kernel.Kernel`
            bound to a process).
        use_caches: route data accesses through a taint-carrying L1/L2
            hierarchy instead of directly to RAM.
        taint_labels: run the taint plane in provenance-label mode (each
            tainted byte tracks which external inputs it derives from).
            Default is the paper's plain 1-bit mode.
    """

    def __init__(
        self,
        executable: Executable,
        policy: Optional[DetectionPolicy] = None,
        syscall_handler: Optional[Callable[["MachineState"], None]] = None,
        use_caches: bool = False,
        taint_labels: bool = False,
    ) -> None:
        self.executable = executable
        self.policy = policy if policy is not None else PointerTaintPolicy()
        self.detector = TaintednessDetector(self.policy)
        self.syscall_handler = syscall_handler
        #: The unified taint plane owning all shadow state; memory and the
        #: register file share its storage by identity.
        self.plane = TaintPlane(MODE_LABEL if taint_labels else MODE_BIT)
        self.taint_labels = taint_labels
        self.memory = TaintedMemory(plane=self.plane)
        self.caches: Optional[CacheHierarchy] = (
            CacheHierarchy(self.memory) if use_caches else None
        )
        self.regs = RegisterFile(plane=self.plane)
        self.stats = ExecutionStats()
        #: Programmer annotations: never-tainted data ranges (section 5.3
        #: extension).  Populate with ``sim.watchpoints.add(addr, len, name)``.
        self.watchpoints = WatchpointSet()
        #: Structured event bus both engines publish to.
        self.events = EventBus()
        self.halted = False
        self.exit_status: Optional[int] = None
        self.pc = 0
        #: Ring buffer of recently executed PCs for diagnostics (always on;
        #: a bounded deque append costs O(1) per instruction).
        self.recent_pcs: Deque[int] = deque(maxlen=RECENT_PC_DEPTH)
        #: Watchdog: absolute ceiling on ``stats.instructions`` (None = no
        #: limit).  Both engines enforce it, so a budget armed here means
        #: the same thing under the functional and the pipeline engine.
        self.instruction_limit: Optional[int] = None
        #: Watchdog: ``time.monotonic()`` deadline (None = no deadline).
        self.deadline: Optional[float] = None
        #: Pluggable defenses currently observing this machine (see
        #: :mod:`repro.defenses`); attach via :meth:`attach_defense`.
        self.defenses: List = []
        self._load_image()

    # ------------------------------------------------------------------
    # image loading
    # ------------------------------------------------------------------

    def _load_image(self) -> None:
        exe = self.executable
        self._text_base = exe.text_base
        self._text_end = exe.text_base + 4 * len(exe.text_words)
        self._instructions = exe.instructions
        # The loader writes text through memory directly (not mem_write),
        # so image loading never counts as a self-modifying-code write.
        for i, word in enumerate(exe.text_words):
            self.memory.write(exe.text_base + 4 * i, 4, word, 0)
        if exe.data:
            self.memory.write_bytes(exe.data_base, bytes(exe.data), False)
        self.pc = exe.entry
        self.regs.write(29, STACK_TOP)  # $sp

    # ------------------------------------------------------------------
    # memory plumbing (through caches when enabled)
    # ------------------------------------------------------------------

    def mem_read(self, addr: int, size: int) -> Tuple[int, int]:
        if self.caches is not None:
            return self.caches.read(addr & _MASK32, size)
        return self.memory.read(addr, size)

    def mem_write(self, addr: int, size: int, value: int, taint: int) -> None:
        addr &= _MASK32
        # Text-page write hook: data/stack live above the text segment,
        # so for well-behaved stores this is one always-false compare.
        if addr < self._text_end and addr + size > self._text_base:
            self._on_text_write()
        if self.caches is not None:
            self.caches.write(addr, size, value, taint)
        else:
            self.memory.write(addr, size, value, taint)

    def flush_caches(self) -> None:
        """Make RAM coherent with the cache hierarchy (tests, post-mortems)."""
        if self.caches is not None:
            self.caches.flush()

    def copy_in(
        self, addr: int, data: bytes, tainted: bool, label_sid: int = 0
    ) -> None:
        """The one kernel copy-in path: external bytes enter the process.

        Cache-less machines take the bulk page-copy fast path; cache-enabled
        machines route every byte through the hierarchy so the taint bits
        land in lines exactly as a store would place them.  Both end in the
        same plane call, so the two configurations share identical taint
        (and, in label mode, provenance) semantics.
        """
        start = addr & _MASK32
        if start < self._text_end and start + len(data) > self._text_base:
            self._on_text_write()
        if self.caches is None:
            self.memory.write_bytes(addr, data, bool(tainted))
        else:
            write = self.caches.write
            taint_bit = 1 if tainted else 0
            for i, byte in enumerate(data):
                write((addr + i) & _MASK32, 1, byte, taint_bit)
        if tainted and label_sid:
            self.plane.label_span(addr, len(data), label_sid)

    def _on_text_write(self) -> None:
        """Hook: a store/copy-in touched the text segment.

        Both engines execute from the immutable predecode, so a text
        write never changes executed semantics; engines with derived
        execution state (the superblock tier) override this to drop it.
        """

    # ------------------------------------------------------------------
    # watchdog (shared limit guard for both execution engines)
    # ------------------------------------------------------------------

    def arm_watchdog(
        self,
        max_instructions: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> None:
        """Bound further execution by an instruction budget and/or a
        wall-clock deadline.

        The limits are enforced by *both* engines (the functional loop
        checks inline, the pipeline checks every cycle through
        :meth:`enforce_watchdog`), converting a runaway or wedged run into
        a structured :class:`ExecutionLimit` instead of a hang.
        """
        if max_instructions is not None:
            self.instruction_limit = self.stats.instructions + max_instructions
        if max_seconds is not None:
            self.deadline = time.monotonic() + max_seconds

    def disarm_watchdog(self) -> None:
        """Remove both watchdog limits."""
        self.instruction_limit = None
        self.deadline = None

    def enforce_watchdog(self) -> None:
        """Raise :class:`ExecutionLimit` when an armed limit has tripped."""
        executed = self.stats.instructions
        limit = self.instruction_limit
        if limit is not None and executed >= limit:
            raise ExecutionLimit(
                f"watchdog: instruction budget exhausted at pc={self.pc:#x} "
                f"after {executed} instructions",
                reason="instructions",
                pc=self.pc,
                instructions=executed,
            )
        deadline = self.deadline
        if deadline is not None and time.monotonic() >= deadline:
            raise ExecutionLimit(
                f"watchdog: wall-clock deadline exceeded at pc={self.pc:#x} "
                f"after {executed} instructions",
                reason="wallclock",
                pc=self.pc,
                instructions=executed,
            )

    # ------------------------------------------------------------------
    # checkpoint / rollback
    # ------------------------------------------------------------------

    def snapshot(self) -> "MachineSnapshot":
        """Capture the complete architectural state of this machine.

        Covers register values, memory data pages, the whole taint plane
        (memory taint pages + register taint masks + label sidecars,
        captured exactly once via ``plane.snapshot()``), the cache
        hierarchy when enabled, the PC, halt state, execution statistics,
        detector alerts, watchpoints, and the recent-PC ring.  The event
        bus and its subscribers are deliberately *not* captured: observers
        persist across rollback.
        """
        return MachineSnapshot(
            pc=self.pc,
            halted=self.halted,
            exit_status=self.exit_status,
            regs=self.regs.snapshot(),
            memory=self.memory.snapshot(),
            taint=self.plane.snapshot(),
            caches=self.caches.snapshot() if self.caches is not None else None,
            stats=self.stats.clone(),
            recent_pcs=tuple(self.recent_pcs),
            alerts=tuple(self.detector.alerts),
            watchpoints=tuple(self.watchpoints),
        )

    def restore(self, snapshot: "MachineSnapshot") -> None:
        """Roll the machine back to a snapshot.

        Every restored container is mutated *in place* -- the predecoded
        executor bindings close over the live register lists, the stats
        object, and the memory/cache objects, so rollback must never swap
        those objects out.  After ``restore`` the same bound program can be
        re-run without re-binding.
        """
        if (snapshot.caches is None) != (self.caches is None):
            raise ValueError(
                "snapshot/machine cache configuration mismatch"
            )
        self.pc = snapshot.pc
        self.halted = snapshot.halted
        self.exit_status = snapshot.exit_status
        self.regs.restore(snapshot.regs)
        self.plane.restore(snapshot.taint)
        self.memory.restore(snapshot.memory)
        if self.caches is not None and snapshot.caches is not None:
            self.caches.restore(snapshot.caches)
        self.stats.restore(snapshot.stats)
        self.recent_pcs.clear()
        self.recent_pcs.extend(snapshot.recent_pcs)
        self.detector.alerts[:] = snapshot.alerts
        self.watchpoints.restore(snapshot.watchpoints)

    def snapshot_cow(self) -> "MachineCowSnapshot":
        """Capture a delta checkpoint (O(mapped pages) scan, no copies).

        Scalars are copied eagerly as in :meth:`snapshot`; page-sized
        state is tracked copy-on-write by the new
        :class:`~repro.mem.cow.CowCapture` this installs as the
        machine's active capture (displacing -- and completing -- any
        previous one).  Restore via :meth:`restore_cow`.
        """
        cow = self.memory.begin_cow()
        self.plane.begin_cow(cow)
        return MachineCowSnapshot(
            pc=self.pc,
            halted=self.halted,
            exit_status=self.exit_status,
            regs=self.regs.snapshot(),
            caches=self.caches.snapshot() if self.caches is not None else None,
            stats=self.stats.clone(),
            recent_pcs=tuple(self.recent_pcs),
            alerts=tuple(self.detector.alerts),
            watchpoints=tuple(self.watchpoints),
            cow=cow,
        )

    def restore_cow(self, snapshot: "MachineCowSnapshot") -> None:
        """Roll back to a delta checkpoint.

        Fast path (the snapshot's capture is still this machine's active
        one): drop pages materialized since capture, rewrite only dirtied
        pages from their baselines, reinstall the captured summaries, and
        reset the dirty tracking -- the capture stays armed for the next
        trial.  Displaced captures were completed into full snapshots at
        displacement time and restore through the legacy path (same
        observable state, full-copy cost).
        """
        cow = snapshot.cow
        if self.memory._cow is not cow:
            if not cow.completed:
                raise ValueError(
                    "displaced delta checkpoint was never completed"
                )
            self.restore(
                MachineSnapshot(
                    pc=snapshot.pc,
                    halted=snapshot.halted,
                    exit_status=snapshot.exit_status,
                    regs=snapshot.regs,
                    memory=cow.full_memory,
                    taint=cow.full_taint,
                    caches=snapshot.caches,
                    stats=snapshot.stats,
                    recent_pcs=snapshot.recent_pcs,
                    alerts=snapshot.alerts,
                    watchpoints=snapshot.watchpoints,
                )
            )
            return
        if (snapshot.caches is None) != (self.caches is None):
            raise ValueError(
                "snapshot/machine cache configuration mismatch"
            )
        self.pc = snapshot.pc
        self.halted = snapshot.halted
        self.exit_status = snapshot.exit_status
        self.regs.restore(snapshot.regs)
        self.memory.restore_cow(cow)
        self.plane.restore_cow(cow)
        cow.clear_dirty()
        if self.caches is not None and snapshot.caches is not None:
            self.caches.restore(snapshot.caches)
        self.stats.restore(snapshot.stats)
        self.recent_pcs.clear()
        self.recent_pcs.extend(snapshot.recent_pcs)
        self.detector.alerts[:] = snapshot.alerts
        self.watchpoints.restore(snapshot.watchpoints)

    # ------------------------------------------------------------------
    # detection (shared by every executor binding)
    # ------------------------------------------------------------------

    def tainted_dereference(
        self, kind: str, pc: int, disasm: str, detail: str,
        pointer: int, taint: int, label_sid: int = 0,
    ) -> None:
        """Handle a dereference whose pointer word carries tainted bytes.

        Executor bindings call this only when ``taint`` is non-zero (the
        clean-pointer fast path stays inline); the per-check
        ``dereference_checks`` counter is maintained by the bindings
        themselves because whether a kind is checked is known at bind time.
        ``label_sid`` is the pointer register's label-set id in label mode
        (0 otherwise); it resolves to the alert's provenance chain.
        """
        stats = self.stats
        if taint & WORD_TAINTED:
            stats.tainted_dereferences += 1
        alert = self.detector.check(
            kind=kind,
            pc=pc,
            disassembly=disasm,
            pointer_value=pointer & _MASK32,
            taint_mask=taint,
            instruction_index=stats.instructions,
            detail=detail,
            provenance=self.plane.provenance(label_sid),
        )
        if alert is not None:
            stats.alerts += 1
            events = self.events
            if events.subscribers(TaintedDereference):
                events.emit(TaintedDereference(pc, kind, alert))
            raise SecurityException(alert)

    def annotation_violation(
        self, pc: int, disasm: str, addr: int, size: int, taint: int,
        label_sid: int = 0,
    ) -> None:
        """Raise when tainted bytes land inside annotated data (s5.3)."""
        watchpoint = self.watchpoints.hit(addr & _MASK32, size)
        if watchpoint is None:
            return
        alert = Alert(
            pc=pc,
            kind=KIND_ANNOTATION,
            disassembly=disasm,
            pointer_value=addr & _MASK32,
            taint_mask=taint,
            instruction_index=self.stats.instructions,
            detail=f"tainted write into {watchpoint}",
            provenance=self.plane.provenance(label_sid),
        )
        self.detector.alerts.append(alert)
        self.stats.alerts += 1
        events = self.events
        if events.subscribers(TaintedDereference):
            events.emit(TaintedDereference(pc, KIND_ANNOTATION, alert))
        raise SecurityException(alert)

    # ------------------------------------------------------------------
    # pluggable defenses (event-bus observers; see repro.defenses)
    # ------------------------------------------------------------------

    def attach_defense(self, detector) -> "MachineState":
        """Attach a :class:`repro.defenses.Detector` to observe this machine.

        Defenses subscribe event-bus hook points; like every other
        subscriber their state is *not* part of machine snapshots, so
        rollback restores architectural state while attached defenses
        persist.  Returns the machine for chaining.
        """
        detector.attach(self)
        self.defenses.append(detector)
        return self

    def detach_defense(self, detector) -> None:
        """Unsubscribe one attached defense (no-op when not attached)."""
        if detector in self.defenses:
            self.defenses.remove(detector)
            detector.detach()

    def defense_summaries(self) -> Dict[str, Dict[str, object]]:
        """Per-defense summary dicts keyed by defense name.

        This is the ``stats.defenses`` block of the unified result schema;
        empty when no pluggable defense is attached (the default inline
        taintedness path), which keeps default-run JSON byte-identical.
        """
        return {d.name: d.summary() for d in self.defenses}

    # ------------------------------------------------------------------
    # conveniences for the kernel / tests
    # ------------------------------------------------------------------

    def halt(self, status: int) -> None:
        """Stop the machine (called by the kernel's SYS_EXIT)."""
        self.halted = True
        self.exit_status = status

    @property
    def alerts(self) -> List[Alert]:
        return self.detector.alerts
