"""Functional execution engine with taintedness tracking and detection.

This is the workhorse engine: it interprets decoded instructions one at a
time, applying the Table 1 taint-propagation rules and the section 4.3
dereference checks inline.  (The cycle-level five-stage model lives in
:mod:`repro.cpu.pipeline`; both engines share this module's ALU and taint
semantics.)

The SimpleScalar PISA ISA the paper uses has no branch delay slots, and
neither does this machine.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.annotations import WatchpointSet
from ..core.detector import (
    Alert,
    KIND_ANNOTATION,
    KIND_JUMP,
    KIND_LOAD,
    KIND_STORE,
    SecurityException,
    TaintednessDetector,
)
from ..core.policy import DetectionPolicy, PointerTaintPolicy
from ..core.propagation import (
    SHIFT_LEFT,
    SHIFT_RIGHT,
    propagate_and,
    propagate_default,
    propagate_shift,
)
from ..core.taint import WORD_TAINTED
from ..isa.instructions import Instr, LOAD_INFO, STORE_INFO
from ..isa.program import Executable
from ..mem.cache import CacheHierarchy
from ..mem.layout import STACK_TOP
from ..mem.registers import RegisterFile
from ..mem.tainted_memory import TaintedMemory
from .stats import ExecutionStats

_MASK32 = 0xFFFFFFFF


class ExecutionLimit(Exception):
    """Raised when a run exceeds its instruction budget (runaway guard)."""


class SimulatorFault(Exception):
    """Raised on machine-level faults (unaligned access, bad PC...).

    On an unprotected machine a successful memory-corruption attack often
    ends in one of these instead of a detector alert -- that distinction is
    what the coverage benchmarks report.
    """


def _signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


class Simulator:
    """Functional simulator for one process image.

    Args:
        executable: the program image to load.
        policy: detection policy (defaults to the paper's pointer-taintedness
            policy).
        syscall_handler: callable invoked on ``syscall`` instructions with
            the simulator as argument (normally a :class:`repro.kernel.Kernel`
            bound to a process).
        use_caches: route data accesses through a taint-carrying L1/L2
            hierarchy instead of directly to RAM.
    """

    def __init__(
        self,
        executable: Executable,
        policy: Optional[DetectionPolicy] = None,
        syscall_handler: Optional[Callable[["Simulator"], None]] = None,
        use_caches: bool = False,
    ) -> None:
        self.executable = executable
        self.policy = policy if policy is not None else PointerTaintPolicy()
        self.detector = TaintednessDetector(self.policy)
        self.syscall_handler = syscall_handler
        self.memory = TaintedMemory()
        self.caches: Optional[CacheHierarchy] = (
            CacheHierarchy(self.memory) if use_caches else None
        )
        self.regs = RegisterFile()
        self.stats = ExecutionStats()
        #: Programmer annotations: never-tainted data ranges (section 5.3
        #: extension).  Populate with ``sim.watchpoints.add(addr, len, name)``.
        self.watchpoints = WatchpointSet()
        self.halted = False
        self.exit_status: Optional[int] = None
        self.pc = 0
        #: Ring buffer of recently executed PCs for diagnostics.
        self.recent_pcs: List[int] = []
        #: Optional per-instruction hook ``(sim, pc, instr) -> None``.
        self.trace_hook: Optional[Callable[["Simulator", int, Instr], None]] = None
        self._load_image()

    # ------------------------------------------------------------------
    # image loading
    # ------------------------------------------------------------------

    def _load_image(self) -> None:
        exe = self.executable
        for i, word in enumerate(exe.text_words):
            self.memory.write(exe.text_base + 4 * i, 4, word, 0)
        if exe.data:
            self.memory.write_bytes(exe.data_base, bytes(exe.data), False)
        self.pc = exe.entry
        self.regs.write(29, STACK_TOP)  # $sp
        self._text_base = exe.text_base
        self._instructions = exe.instructions

    # ------------------------------------------------------------------
    # memory plumbing (through caches when enabled)
    # ------------------------------------------------------------------

    def mem_read(self, addr: int, size: int) -> Tuple[int, int]:
        if self.caches is not None:
            return self.caches.read(addr & _MASK32, size)
        return self.memory.read(addr, size)

    def mem_write(self, addr: int, size: int, value: int, taint: int) -> None:
        if self.caches is not None:
            self.caches.write(addr & _MASK32, size, value, taint)
        else:
            self.memory.write(addr, size, value, taint)

    def flush_caches(self) -> None:
        """Make RAM coherent with the cache hierarchy (tests, post-mortems)."""
        if self.caches is not None:
            self.caches.flush()

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------

    def fetch(self, pc: int) -> Instr:
        index = (pc - self._text_base) >> 2
        if pc & 3 or not 0 <= index < len(self._instructions):
            raise SimulatorFault(
                f"instruction fetch from {pc:#010x} (outside text segment)"
            )
        return self._instructions[index]

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run until exit or alert; returns the process exit status.

        Raises :class:`SecurityException` when the detector fires and
        :class:`ExecutionLimit` when the budget is exhausted.
        """
        budget = max_instructions
        while not self.halted:
            if budget <= 0:
                raise ExecutionLimit(
                    f"exceeded {max_instructions} instructions at pc={self.pc:#x}"
                )
            self.step()
            budget -= 1
        return self.exit_status if self.exit_status is not None else 0

    def step(self) -> None:
        """Execute a single instruction."""
        pc = self.pc
        instr = self.fetch(pc)
        if self.trace_hook is not None:
            self.trace_hook(self, pc, instr)
        if len(self.recent_pcs) >= 32:
            self.recent_pcs.pop(0)
        self.recent_pcs.append(pc)
        self.stats.instructions += 1
        self.stats.by_mnemonic[instr.name] += 1
        self.stats.by_class[instr.klass] += 1
        next_pc = (pc + 4) & _MASK32
        name = instr.name
        regs = self.regs
        track = self.policy.track_taint

        # ---- loads -----------------------------------------------------
        if name in LOAD_INFO:
            size, signed = LOAD_INFO[name]
            base, base_taint = regs.read(instr.rs)
            addr = (base + instr.imm) & _MASK32
            self._check_dereference(KIND_LOAD, pc, instr, base, base_taint)
            value, taint = self.mem_read(addr, size)
            if signed:
                bits = 8 * size
                if value >> (bits - 1) & 1:
                    value |= _MASK32 ^ ((1 << bits) - 1)
                # Sign extension derives the upper bytes from the loaded
                # value's top bit: replicate taint across the whole word.
                if taint:
                    taint = WORD_TAINTED
            if not track:
                taint = 0
            regs.write(instr.rt, value, taint)
            self.stats.loads += 1
            if taint:
                self.stats.tainted_results += 1
            self.pc = next_pc
            return

        # ---- stores ----------------------------------------------------
        if name in STORE_INFO:
            size = STORE_INFO[name]
            base, base_taint = regs.read(instr.rs)
            addr = (base + instr.imm) & _MASK32
            self._check_dereference(KIND_STORE, pc, instr, base, base_taint)
            value, taint = regs.read(instr.rt)
            if not track:
                taint = 0
            store_taint = taint & ((1 << size) - 1)
            if store_taint and len(self.watchpoints):
                self._check_annotation(pc, instr, addr, size, store_taint)
            self.mem_write(addr, size, value, store_taint)
            self.stats.stores += 1
            self.pc = next_pc
            return

        # ---- branches (compare class: untaint operands) ------------------
        if instr.klass == "branch":
            self.stats.branches += 1
            rs_val, _ = regs.read(instr.rs)
            rt_val, _ = regs.read(instr.rt)
            if track and self.policy.untaint_on_compare:
                regs.set_taint(instr.rs, 0)
                if name in ("beq", "bne"):
                    regs.set_taint(instr.rt, 0)
            taken = False
            if name == "beq":
                taken = rs_val == rt_val
            elif name == "bne":
                taken = rs_val != rt_val
            elif name == "blez":
                taken = _signed(rs_val) <= 0
            elif name == "bgtz":
                taken = _signed(rs_val) > 0
            elif name == "bltz":
                taken = _signed(rs_val) < 0
            elif name == "bgez":
                taken = _signed(rs_val) >= 0
            if taken:
                next_pc = (pc + 4 + (instr.imm << 2)) & _MASK32
            self.pc = next_pc
            return

        # ---- jumps -------------------------------------------------------
        if name == "j":
            self.stats.jumps += 1
            self.pc = instr.target
            return
        if name == "jal":
            self.stats.jumps += 1
            regs.write(31, (pc + 4) & _MASK32, 0)
            self.pc = instr.target
            return
        if name == "jr":
            self.stats.jumps += 1
            target, taint = regs.read(instr.rs)
            self._check_dereference(KIND_JUMP, pc, instr, target, taint)
            self.pc = target
            return
        if name == "jalr":
            self.stats.jumps += 1
            target, taint = regs.read(instr.rs)
            self._check_dereference(KIND_JUMP, pc, instr, target, taint)
            regs.write(instr.rd, (pc + 4) & _MASK32, 0)
            self.pc = target
            return

        # ---- system ------------------------------------------------------
        if name == "syscall":
            self.stats.syscalls += 1
            if self.syscall_handler is None:
                raise SimulatorFault(f"syscall at {pc:#x} with no kernel attached")
            self.syscall_handler(self)
            self.pc = next_pc
            return
        if name == "break":
            raise SimulatorFault(f"break instruction at {pc:#x}")

        # ---- ALU ----------------------------------------------------------
        self._execute_alu(instr, track)
        self.pc = next_pc

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def _check_dereference(
        self, kind: str, pc: int, instr: Instr, pointer: int, taint: int
    ) -> None:
        if self.policy.checks(kind):
            self.stats.dereference_checks += 1
        if taint & WORD_TAINTED:
            self.stats.tainted_dereferences += 1
        alert = self.detector.check(
            kind=kind,
            pc=pc,
            disassembly=instr.text or instr.name,
            pointer_value=pointer & _MASK32,
            taint_mask=taint,
            instruction_index=self.stats.instructions,
            detail=self.executable.source_map.get(pc, ""),
        )
        if alert is not None:
            self.stats.alerts += 1
            raise SecurityException(alert)

    def _check_annotation(
        self, pc: int, instr: Instr, addr: int, size: int, taint: int
    ) -> None:
        """Raise when tainted bytes land inside annotated data (s5.3)."""
        watchpoint = self.watchpoints.hit(addr & _MASK32, size)
        if watchpoint is None:
            return
        alert = Alert(
            pc=pc,
            kind=KIND_ANNOTATION,
            disassembly=instr.text or instr.name,
            pointer_value=addr & _MASK32,
            taint_mask=taint,
            instruction_index=self.stats.instructions,
            detail=f"tainted write into {watchpoint}",
        )
        self.detector.alerts.append(alert)
        self.stats.alerts += 1
        raise SecurityException(alert)

    # ------------------------------------------------------------------
    # ALU semantics + Table 1 taint rules
    # ------------------------------------------------------------------

    def _execute_alu(self, instr: Instr, track: bool) -> None:
        name = instr.name
        regs = self.regs
        rs_val, rs_t = regs.read(instr.rs)
        rt_val, rt_t = regs.read(instr.rt)
        if not track:
            rs_t = rt_t = 0

        if name in ("add", "addu"):
            result = (rs_val + rt_val) & _MASK32
            taint = propagate_default(rs_t, rt_t)
            dest = instr.rd
        elif name in ("sub", "subu"):
            result = (rs_val - rt_val) & _MASK32
            taint = propagate_default(rs_t, rt_t)
            dest = instr.rd
        elif name == "and":
            result = rs_val & rt_val
            if track and self.policy.untaint_and_zero:
                taint = propagate_and(rs_t, rs_val, rt_t, rt_val)
            else:
                taint = propagate_default(rs_t, rt_t)
            dest = instr.rd
        elif name == "or":
            result = rs_val | rt_val
            taint = propagate_default(rs_t, rt_t)
            dest = instr.rd
        elif name == "xor":
            result = rs_val ^ rt_val
            if (
                track
                and self.policy.untaint_xor_idiom
                and instr.rs == instr.rt
            ):
                taint = 0
            else:
                taint = propagate_default(rs_t, rt_t)
            dest = instr.rd
        elif name == "nor":
            result = ~(rs_val | rt_val) & _MASK32
            taint = propagate_default(rs_t, rt_t)
            dest = instr.rd
        elif name in ("slt", "sltu"):
            if name == "slt":
                result = 1 if _signed(rs_val) < _signed(rt_val) else 0
            else:
                result = 1 if rs_val < rt_val else 0
            taint = 0
            if track and self.policy.untaint_on_compare:
                regs.set_taint(instr.rs, 0)
                regs.set_taint(instr.rt, 0)
            dest = instr.rd
        elif name in ("slti", "sltiu"):
            if name == "slti":
                result = 1 if _signed(rs_val) < instr.imm else 0
            else:
                result = 1 if rs_val < (instr.imm & _MASK32) else 0
            taint = 0
            if track and self.policy.untaint_on_compare:
                regs.set_taint(instr.rs, 0)
            dest = instr.rt
        elif name in ("addi", "addiu"):
            result = (rs_val + instr.imm) & _MASK32
            taint = rs_t
            dest = instr.rt
        elif name == "andi":
            result = rs_val & instr.imm
            if track and self.policy.untaint_and_zero:
                taint = propagate_and(rs_t, rs_val, 0, instr.imm)
            else:
                taint = rs_t
            dest = instr.rt
        elif name == "ori":
            result = rs_val | instr.imm
            taint = rs_t
            dest = instr.rt
        elif name == "xori":
            result = rs_val ^ instr.imm
            taint = rs_t
            dest = instr.rt
        elif name == "lui":
            result = (instr.imm << 16) & _MASK32
            taint = 0
            dest = instr.rt
        elif name in ("sll", "srl", "sra"):
            shamt = instr.shamt
            if name == "sll":
                result = (rt_val << shamt) & _MASK32
                direction = SHIFT_LEFT
            elif name == "srl":
                result = rt_val >> shamt
                direction = SHIFT_RIGHT
            else:
                result = (_signed(rt_val) >> shamt) & _MASK32
                direction = SHIFT_RIGHT
            taint = propagate_shift(rt_t, direction) if shamt else rt_t
            dest = instr.rd
        elif name in ("sllv", "srlv", "srav"):
            shamt = rs_val & 0x1F
            if name == "sllv":
                result = (rt_val << shamt) & _MASK32
                direction = SHIFT_LEFT
            elif name == "srlv":
                result = rt_val >> shamt
                direction = SHIFT_RIGHT
            else:
                result = (_signed(rt_val) >> shamt) & _MASK32
                direction = SHIFT_RIGHT
            taint = propagate_shift(rt_t, direction, amount_taint=rs_t)
            dest = instr.rd
        elif name in ("mult", "multu"):
            if name == "mult":
                product = _signed(rs_val) * _signed(rt_val) & 0xFFFFFFFFFFFFFFFF
            else:
                product = rs_val * rt_val
            # Multiplication mixes every source byte into every result byte:
            # collapse taint across the whole double word.
            taint = WORD_TAINTED if (rs_t | rt_t) else 0
            regs.lo = product & _MASK32
            regs.hi = product >> 32 & _MASK32
            regs.lo_taint = taint
            regs.hi_taint = taint
            if taint:
                self.stats.tainted_results += 1
            return
        elif name in ("div", "divu"):
            if rt_val == 0:
                quotient, remainder = 0, rs_val  # MIPS leaves these undefined
            elif name == "div":
                a, b = _signed(rs_val), _signed(rt_val)
                quotient = int(a / b)  # C-style truncation toward zero
                remainder = a - quotient * b
            else:
                quotient, remainder = rs_val // rt_val, rs_val % rt_val
            taint = WORD_TAINTED if (rs_t | rt_t) else 0
            regs.lo = quotient & _MASK32
            regs.hi = remainder & _MASK32
            regs.lo_taint = taint
            regs.hi_taint = taint
            if taint:
                self.stats.tainted_results += 1
            return
        elif name == "mflo":
            result, taint = regs.lo, regs.lo_taint if track else 0
            dest = instr.rd
        elif name == "mfhi":
            result, taint = regs.hi, regs.hi_taint if track else 0
            dest = instr.rd
        else:  # pragma: no cover - the decoder only produces known names
            raise SimulatorFault(f"unimplemented instruction {name}")

        if not track:
            taint = 0
        regs.write(dest, result, taint)
        if taint and dest != 0:
            self.stats.tainted_results += 1

    # ------------------------------------------------------------------
    # conveniences for the kernel / tests
    # ------------------------------------------------------------------

    def halt(self, status: int) -> None:
        """Stop the machine (called by the kernel's SYS_EXIT)."""
        self.halted = True
        self.exit_status = status

    @property
    def alerts(self) -> List[Alert]:
        return self.detector.alerts
