"""Functional execution engine: fetch -> bound-executor dispatch.

The text segment is predecoded at construction time by
:func:`repro.cpu.dispatch.bind_program`, which turns every static
instruction into an executor closure with operand fields, load/store
metadata, branch targets, and the applicable Table 1 taint rule resolved
once.  ``step()``/``run()`` are therefore pure drivers: index the binding
for the current pc, call it, account the retirement.  All ISA semantics,
Table 1 propagation, and the section 4.3 dereference checks live in
:mod:`repro.cpu.dispatch`; all architectural state lives in
:class:`repro.cpu.machine.MachineState`, which the cycle-level five-stage
model (:mod:`repro.cpu.pipeline`) shares.

Observation happens through the machine's typed event bus
(:mod:`repro.core.events`): subscribe to ``InstructionRetired`` for
tracing, ``TaintedDereference`` for alerts, ``MemoryFaulted`` for faults.
With zero subscribers the engine allocates no event objects.

The SimpleScalar PISA ISA the paper uses has no branch delay slots, and
neither does this machine.
"""

from __future__ import annotations

from time import monotonic as _monotonic
from typing import Callable, Optional

from ..core.events import InstructionRetired, MemoryFaulted
from ..defenses.policy import DetectionPolicy
from ..isa.instructions import Instr
from ..isa.program import Executable
from ..mem.tainted_memory import MemoryFault
from .dispatch import bind_program
from .machine import ExecutionLimit, MachineState, SimulatorFault

__all__ = ["ExecutionLimit", "Simulator", "SimulatorFault"]


class Simulator(MachineState):
    """Functional simulator for one process image.

    Args:
        executable: the program image to load.
        policy: detection policy (defaults to the paper's pointer-taintedness
            policy).
        syscall_handler: callable invoked on ``syscall`` instructions with
            the simulator as argument (normally a :class:`repro.kernel.Kernel`
            bound to a process).
        use_caches: route data accesses through a taint-carrying L1/L2
            hierarchy instead of directly to RAM.
        taint_labels: run the taint plane in provenance-label mode (see
            :mod:`repro.taint.plane`).
    """

    def __init__(
        self,
        executable: Executable,
        policy: Optional[DetectionPolicy] = None,
        syscall_handler: Optional[Callable[["Simulator"], None]] = None,
        use_caches: bool = False,
        taint_labels: bool = False,
    ) -> None:
        super().__init__(executable, policy, syscall_handler, use_caches, taint_labels)
        self._trace_hook: Optional[Callable[["Simulator", int, Instr], None]] = None
        self._trace_adapter: Optional[Callable[[InstructionRetired], None]] = None
        #: Per-slot executor bindings, parallel to ``executable.instructions``.
        self._ops = bind_program(self)
        # Parallel mnemonic/class name lists so the per-step instruction-mix
        # accounting never touches Instr attributes on the hot path.
        self._names = [instr.name for instr in self._instructions]
        self._klasses = [instr.klass for instr in self._instructions]

    # ------------------------------------------------------------------
    # deprecated observation shim (prefer the event bus)
    # ------------------------------------------------------------------

    @property
    def trace_hook(self) -> Optional[Callable[["Simulator", int, Instr], None]]:
        """Deprecated per-instruction hook ``(sim, pc, instr) -> None``.

        Back-compat shim over an ``InstructionRetired`` subscription; new
        code should subscribe to the event bus directly.  Unlike the old
        pre-execution hook, the shim observes *retired* instructions, so a
        faulting or detector-flagged instruction is not reported.
        """
        return self._trace_hook

    @trace_hook.setter
    def trace_hook(
        self, hook: Optional[Callable[["Simulator", int, Instr], None]]
    ) -> None:
        if self._trace_adapter is not None:
            self.events.unsubscribe(InstructionRetired, self._trace_adapter)
            self._trace_adapter = None
        self._trace_hook = hook
        if hook is not None:
            def adapter(event: InstructionRetired, _hook=hook) -> None:
                _hook(self, event.pc, event.instr)

            self._trace_adapter = self.events.subscribe(
                InstructionRetired, adapter
            )

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------

    def fetch(self, pc: int) -> Instr:
        index = (pc - self._text_base) >> 2
        if pc & 3 or not 0 <= index < len(self._instructions):
            fault = SimulatorFault(
                f"instruction fetch from {pc:#010x} (outside text segment)"
            )
            fault_subs = self.events.subscribers(MemoryFaulted)
            if fault_subs:
                self.events.emit(MemoryFaulted(pc, str(fault)))
            raise fault
        return self._instructions[index]

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run until exit or alert; returns the process exit status.

        Raises :class:`SecurityException` when the detector fires and
        :class:`ExecutionLimit` when the instruction budget -- the smaller
        of ``max_instructions`` and any machine-level watchdog limit armed
        via :meth:`~repro.cpu.machine.MachineState.arm_watchdog` -- is
        exhausted, or when an armed wall-clock deadline passes (checked
        every 2048 instructions to keep the hot path cheap).
        """
        ops = self._ops
        names = self._names
        klasses = self._klasses
        count = len(ops)
        base = self._text_base
        instructions = self._instructions
        stats = self.stats
        by_mnemonic = stats.by_mnemonic
        by_class = stats.by_class
        recent = self.recent_pcs
        bus = self.events
        retired_subs = bus.subscribers(InstructionRetired)
        fault_subs = bus.subscribers(MemoryFaulted)
        pc = self.pc
        budget = max_instructions
        limit = self.instruction_limit
        if limit is not None:
            budget = min(budget, max(0, limit - stats.instructions))
        deadline = self.deadline
        monotonic = _monotonic
        try:
            while not self.halted:
                if budget <= 0:
                    raise ExecutionLimit(
                        f"exceeded instruction budget at pc={pc:#x}",
                        reason="instructions",
                        pc=pc,
                        instructions=stats.instructions,
                    )
                if (
                    deadline is not None
                    and stats.instructions & 2047 == 0
                    and monotonic() >= deadline
                ):
                    raise ExecutionLimit(
                        f"watchdog: wall-clock deadline exceeded at "
                        f"pc={pc:#x}",
                        reason="wallclock",
                        pc=pc,
                        instructions=stats.instructions,
                    )
                index = (pc - base) >> 2
                if pc & 3 or index < 0 or index >= count:
                    fault = SimulatorFault(
                        f"instruction fetch from {pc:#010x} (outside text segment)"
                    )
                    if fault_subs:
                        bus.emit(MemoryFaulted(pc, str(fault)))
                    raise fault
                recent.append(pc)
                stats.instructions += 1
                by_mnemonic[names[index]] += 1
                by_class[klasses[index]] += 1
                try:
                    next_pc = ops[index]()
                except (SimulatorFault, MemoryFault) as exc:
                    if fault_subs:
                        bus.emit(MemoryFaulted(pc, str(exc)))
                    raise
                if retired_subs:
                    bus.emit(
                        InstructionRetired(
                            pc, instructions[index], stats.instructions
                        )
                    )
                pc = next_pc
                budget -= 1
        finally:
            # On SecurityException / faults the pc stays at the offending
            # instruction; on a clean halt it has advanced past the exit
            # syscall -- same contract as before the decode-once refactor.
            self.pc = pc
        return self.exit_status if self.exit_status is not None else 0

    def step(self) -> None:
        """Execute a single instruction (the pipeline's EX-stage driver)."""
        pc = self.pc
        index = (pc - self._text_base) >> 2
        bus = self.events
        fault_subs = bus.subscribers(MemoryFaulted)
        if pc & 3 or not 0 <= index < len(self._ops):
            fault = SimulatorFault(
                f"instruction fetch from {pc:#010x} (outside text segment)"
            )
            if fault_subs:
                bus.emit(MemoryFaulted(pc, str(fault)))
            raise fault
        stats = self.stats
        instr = self._instructions[index]
        self.recent_pcs.append(pc)
        stats.instructions += 1
        stats.by_mnemonic[instr.name] += 1
        stats.by_class[instr.klass] += 1
        try:
            next_pc = self._ops[index]()
        except (SimulatorFault, MemoryFault) as exc:
            if fault_subs:
                bus.emit(MemoryFaulted(pc, str(exc)))
            raise
        retired_subs = bus.subscribers(InstructionRetired)
        if retired_subs:
            bus.emit(InstructionRetired(pc, instr, stats.instructions))
        self.pc = next_pc
