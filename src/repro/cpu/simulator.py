"""Functional execution engine: fetch -> bound-executor dispatch.

The text segment is predecoded at construction time by
:func:`repro.cpu.dispatch.bind_program`, which turns every static
instruction into an executor closure with operand fields, load/store
metadata, branch targets, and the applicable Table 1 taint rule resolved
once.  ``step()``/``run()`` are therefore pure drivers: index the binding
for the current pc, call it, account the retirement.  All ISA semantics,
Table 1 propagation, and the section 4.3 dereference checks live in
:mod:`repro.cpu.dispatch`; all architectural state lives in
:class:`repro.cpu.machine.MachineState`, which the cycle-level five-stage
model (:mod:`repro.cpu.pipeline`) shares.

Observation happens through the machine's typed event bus
(:mod:`repro.core.events`): subscribe to ``InstructionRetired`` for
tracing, ``TaintedDereference`` for alerts, ``MemoryFaulted`` for faults.
With zero subscribers the engine allocates no event objects.

The SimpleScalar PISA ISA the paper uses has no branch delay slots, and
neither does this machine.
"""

from __future__ import annotations

from time import monotonic as _monotonic
from typing import Callable, Optional

from ..core.events import InstructionRetired, MemoryFaulted
from ..defenses.policy import DetectionPolicy
from ..isa.instructions import Instr
from ..isa.program import Executable
from ..mem.tainted_memory import MemoryFault
from .dispatch import bind_program
from .machine import (
    ExecutionLimit,
    MachineState,
    RECENT_PC_DEPTH,
    SimulatorFault,
)
from .superblock import SuperblockCache

__all__ = ["ExecutionLimit", "Simulator", "SimulatorFault"]


class Simulator(MachineState):
    """Functional simulator for one process image.

    Args:
        executable: the program image to load.
        policy: detection policy (defaults to the paper's pointer-taintedness
            policy).
        syscall_handler: callable invoked on ``syscall`` instructions with
            the simulator as argument (normally a :class:`repro.kernel.Kernel`
            bound to a process).
        use_caches: route data accesses through a taint-carrying L1/L2
            hierarchy instead of directly to RAM.
        taint_labels: run the taint plane in provenance-label mode (see
            :mod:`repro.taint.plane`).
        superblocks: fuse straight-line decoded runs into single closures
            (:mod:`repro.cpu.superblock`).  On by default; results are
            byte-identical either way -- the fused tier falls back to
            single-stepping whenever an ``InstructionRetired`` subscriber
            needs per-instruction events.
    """

    def __init__(
        self,
        executable: Executable,
        policy: Optional[DetectionPolicy] = None,
        syscall_handler: Optional[Callable[["Simulator"], None]] = None,
        use_caches: bool = False,
        taint_labels: bool = False,
        superblocks: bool = True,
    ) -> None:
        super().__init__(executable, policy, syscall_handler, use_caches, taint_labels)
        self._trace_hook: Optional[Callable[["Simulator", int, Instr], None]] = None
        self._trace_adapter: Optional[Callable[[InstructionRetired], None]] = None
        #: Per-slot executor bindings, parallel to ``executable.instructions``.
        self._ops = bind_program(self)
        # Parallel mnemonic/class name lists so the per-step instruction-mix
        # accounting never touches Instr attributes on the hot path.
        self._names = [instr.name for instr in self._instructions]
        self._klasses = [instr.klass for instr in self._instructions]
        #: Fused superblock cache (derived from the immutable predecode:
        #: snapshot-safe, flushed only on text-segment writes).
        self.superblocks = SuperblockCache()
        self.superblocks_enabled = bool(superblocks)

    def _on_text_write(self) -> None:
        # Self-modifying-code write: drop every fused block so no fused
        # closure outlives a text write (re-fusion happens lazily at the
        # next dispatch, from the same immutable decode).
        self.superblocks.invalidate()

    # ------------------------------------------------------------------
    # deprecated observation shim (prefer the event bus)
    # ------------------------------------------------------------------

    @property
    def trace_hook(self) -> Optional[Callable[["Simulator", int, Instr], None]]:
        """Deprecated per-instruction hook ``(sim, pc, instr) -> None``.

        Back-compat shim over an ``InstructionRetired`` subscription; new
        code should subscribe to the event bus directly.  Unlike the old
        pre-execution hook, the shim observes *retired* instructions, so a
        faulting or detector-flagged instruction is not reported.
        """
        return self._trace_hook

    @trace_hook.setter
    def trace_hook(
        self, hook: Optional[Callable[["Simulator", int, Instr], None]]
    ) -> None:
        import warnings

        warnings.warn(
            "Simulator.trace_hook is deprecated; subscribe to "
            "InstructionRetired on the event bus instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._trace_adapter is not None:
            self.events.unsubscribe(InstructionRetired, self._trace_adapter)
            self._trace_adapter = None
        self._trace_hook = hook
        if hook is not None:
            def adapter(event: InstructionRetired, _hook=hook) -> None:
                _hook(self, event.pc, event.instr)

            self._trace_adapter = self.events.subscribe(
                InstructionRetired, adapter
            )

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------

    def fetch(self, pc: int) -> Instr:
        index = (pc - self._text_base) >> 2
        if pc & 3 or not 0 <= index < len(self._instructions):
            fault = SimulatorFault(
                f"instruction fetch from {pc:#010x} (outside text segment)"
            )
            fault_subs = self.events.subscribers(MemoryFaulted)
            if fault_subs:
                self.events.emit(MemoryFaulted(pc, str(fault)))
            raise fault
        return self._instructions[index]

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run until exit or alert; returns the process exit status.

        Raises :class:`SecurityException` when the detector fires and
        :class:`ExecutionLimit` when the instruction budget -- the smaller
        of ``max_instructions`` and any machine-level watchdog limit armed
        via :meth:`~repro.cpu.machine.MachineState.arm_watchdog` -- is
        exhausted, or when an armed wall-clock deadline passes (checked
        every 2048 instructions to keep the hot path cheap).

        With :attr:`superblocks_enabled` (the default) dispatch runs
        through the fused superblock tier; otherwise the classic
        one-closure-per-instruction loop.  Both produce byte-identical
        architectural results, statistics, and events.
        """
        if self.superblocks_enabled:
            return self._run_fused(max_instructions)
        return self._run_unfused(max_instructions)

    def _run_unfused(self, max_instructions: int) -> int:
        """The classic per-instruction loop (also the semantic reference
        the fused tier's single-step fallback replicates exactly)."""
        ops = self._ops
        names = self._names
        klasses = self._klasses
        count = len(ops)
        base = self._text_base
        instructions = self._instructions
        stats = self.stats
        by_mnemonic = stats.by_mnemonic
        by_class = stats.by_class
        recent = self.recent_pcs
        bus = self.events
        retired_subs = bus.subscribers(InstructionRetired)
        fault_subs = bus.subscribers(MemoryFaulted)
        pc = self.pc
        budget = max_instructions
        limit = self.instruction_limit
        if limit is not None:
            budget = min(budget, max(0, limit - stats.instructions))
        deadline = self.deadline
        monotonic = _monotonic
        try:
            while not self.halted:
                if budget <= 0:
                    raise ExecutionLimit(
                        f"exceeded instruction budget at pc={pc:#x}",
                        reason="instructions",
                        pc=pc,
                        instructions=stats.instructions,
                    )
                if (
                    deadline is not None
                    and stats.instructions & 2047 == 0
                    and monotonic() >= deadline
                ):
                    raise ExecutionLimit(
                        f"watchdog: wall-clock deadline exceeded at "
                        f"pc={pc:#x}",
                        reason="wallclock",
                        pc=pc,
                        instructions=stats.instructions,
                    )
                index = (pc - base) >> 2
                if pc & 3 or index < 0 or index >= count:
                    fault = SimulatorFault(
                        f"instruction fetch from {pc:#010x} (outside text segment)"
                    )
                    if fault_subs:
                        bus.emit(MemoryFaulted(pc, str(fault)))
                    raise fault
                recent.append(pc)
                stats.instructions += 1
                by_mnemonic[names[index]] += 1
                by_class[klasses[index]] += 1
                try:
                    next_pc = ops[index]()
                except (SimulatorFault, MemoryFault) as exc:
                    if fault_subs:
                        bus.emit(MemoryFaulted(pc, str(exc)))
                    raise
                if retired_subs:
                    bus.emit(
                        InstructionRetired(
                            pc, instructions[index], stats.instructions
                        )
                    )
                pc = next_pc
                budget -= 1
        finally:
            # On SecurityException / faults the pc stays at the offending
            # instruction; on a clean halt it has advanced past the exit
            # syscall -- same contract as before the decode-once refactor.
            self.pc = pc
        return self.exit_status if self.exit_status is not None else 0

    def _run_fused(self, max_instructions: int) -> int:
        """Superblock-fused dispatch loop.

        Per dispatch: look up (or lazily build) the superblock at the
        current pc and run it as one closure, batching the loop-exit
        checks and instruction-mix accounting per block.  Falls back to
        an exact copy of the unfused per-instruction body whenever a
        block cannot run fused: an ``InstructionRetired`` subscriber
        needs per-instruction events (tracing, fault injectors, defense
        comparators), the remaining budget is smaller than the block, or
        the block is a single instruction.  On a mid-block exception the
        sync closure's ``stats.instructions`` updates pinpoint the
        faulting instruction, and partial progress (recent pcs,
        instruction mix, ``self.pc``) is reconciled to byte-identical
        unfused state before the exception propagates.
        """
        ops = self._ops
        names = self._names
        klasses = self._klasses
        count = len(ops)
        base = self._text_base
        instructions = self._instructions
        stats = self.stats
        by_mnemonic = stats.by_mnemonic
        by_class = stats.by_class
        recent = self.recent_pcs
        bus = self.events
        retired_subs = bus.subscribers(InstructionRetired)
        fault_subs = bus.subscribers(MemoryFaulted)
        cache = self.superblocks
        blocks = cache.blocks
        lookup = cache.lookup
        hits = 0
        pc = self.pc
        budget = max_instructions
        limit = self.instruction_limit
        if limit is not None:
            budget = min(budget, max(0, limit - stats.instructions))
        deadline = self.deadline
        monotonic = _monotonic
        next_deadline_check = stats.instructions
        try:
            while not self.halted:
                if budget <= 0:
                    raise ExecutionLimit(
                        f"exceeded instruction budget at pc={pc:#x}",
                        reason="instructions",
                        pc=pc,
                        instructions=stats.instructions,
                    )
                if (
                    deadline is not None
                    and stats.instructions >= next_deadline_check
                ):
                    next_deadline_check = stats.instructions + 2048
                    if monotonic() >= deadline:
                        raise ExecutionLimit(
                            f"watchdog: wall-clock deadline exceeded at "
                            f"pc={pc:#x}",
                            reason="wallclock",
                            pc=pc,
                            instructions=stats.instructions,
                        )
                index = (pc - base) >> 2
                if pc & 3 or index < 0 or index >= count:
                    fault = SimulatorFault(
                        f"instruction fetch from {pc:#010x} (outside text segment)"
                    )
                    if fault_subs:
                        bus.emit(MemoryFaulted(pc, str(fault)))
                    raise fault
                block = blocks.get(index)
                if block is None:
                    block = lookup(self, index)
                n = block.n
                if retired_subs or n < 2 or budget < n:
                    # Single-step fallback: byte-for-byte the unfused body.
                    recent.append(pc)
                    stats.instructions += 1
                    by_mnemonic[names[index]] += 1
                    by_class[klasses[index]] += 1
                    try:
                        next_pc = ops[index]()
                    except (SimulatorFault, MemoryFault) as exc:
                        if fault_subs:
                            bus.emit(MemoryFaulted(pc, str(exc)))
                        raise
                    if retired_subs:
                        bus.emit(
                            InstructionRetired(
                                pc, instructions[index], stats.instructions
                            )
                        )
                    pc = next_pc
                    budget -= 1
                    continue
                if block.pure:
                    # Pure blocks cannot raise and observe nothing: let
                    # the closure iterate the block while its terminator
                    # branches back to the entry (one exit check per
                    # iteration), then account for the whole burst.
                    max_iters = budget // n
                    if deadline is not None and n * max_iters > 2048:
                        # Keep the unfused loop's ~2048-instruction
                        # wall-clock check cadence.
                        max_iters = max(1, 2048 // n)
                    next_pc, iters = block.fn(max_iters)
                    if iters == 1:
                        stats.instructions += n
                        recent.extend(block.pcs)
                        for name, cnt in block.mix_names:
                            by_mnemonic[name] += cnt
                        for klass, cnt in block.mix_classes:
                            by_class[klass] += cnt
                        hits += 1
                        pc = next_pc
                        budget -= n
                        continue
                    executed = n * iters
                    stats.instructions += executed
                    if executed >= RECENT_PC_DEPTH:
                        recent.extend(block.loop_tail)
                    else:
                        recent.extend(block.pcs * iters)
                    for name, cnt in block.mix_names:
                        by_mnemonic[name] += cnt * iters
                    for klass, cnt in block.mix_classes:
                        by_class[klass] += cnt * iters
                    hits += iters
                    pc = next_pc
                    budget -= executed
                    continue
                else:
                    n0 = stats.instructions
                    try:
                        next_pc = block.fn()
                    except BaseException as exc:
                        # The sync closure advanced stats.instructions
                        # before each op, so it names the faulting slot.
                        k = stats.instructions - n0 - 1
                        if 0 <= k < n:
                            recent.extend(block.pcs[: k + 1])
                            block_names = block.names
                            block_klasses = block.klasses
                            for i in range(k + 1):
                                by_mnemonic[block_names[i]] += 1
                                by_class[block_klasses[i]] += 1
                            pc = block.pcs[k]
                            if fault_subs and isinstance(
                                exc, (SimulatorFault, MemoryFault)
                            ):
                                bus.emit(MemoryFaulted(pc, str(exc)))
                        raise
                recent.extend(block.pcs)
                for name, cnt in block.mix_names:
                    by_mnemonic[name] += cnt
                for klass, cnt in block.mix_classes:
                    by_class[klass] += cnt
                hits += 1
                pc = next_pc
                budget -= n
        finally:
            cache.hits += hits
            # Same pc contract as the unfused loop: the offending
            # instruction on faults, past the exit syscall on halt.
            self.pc = pc
        return self.exit_status if self.exit_status is not None else 0

    def step(self) -> None:
        """Execute a single instruction (the pipeline's EX-stage driver)."""
        pc = self.pc
        index = (pc - self._text_base) >> 2
        bus = self.events
        fault_subs = bus.subscribers(MemoryFaulted)
        if pc & 3 or not 0 <= index < len(self._ops):
            fault = SimulatorFault(
                f"instruction fetch from {pc:#010x} (outside text segment)"
            )
            if fault_subs:
                bus.emit(MemoryFaulted(pc, str(fault)))
            raise fault
        stats = self.stats
        instr = self._instructions[index]
        self.recent_pcs.append(pc)
        stats.instructions += 1
        stats.by_mnemonic[instr.name] += 1
        stats.by_class[instr.klass] += 1
        try:
            next_pc = self._ops[index]()
        except (SimulatorFault, MemoryFault) as exc:
            if fault_subs:
                bus.emit(MemoryFaulted(pc, str(exc)))
            raise
        retired_subs = bus.subscribers(InstructionRetired)
        if retired_subs:
            bus.emit(InstructionRetired(pc, instr, stats.instructions))
        self.pc = next_pc
