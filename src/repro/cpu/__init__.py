"""Execution engines: functional simulator and 5-stage pipeline model."""

from .pipeline import Pipeline, PipelineStats, STAGES
from .simulator import ExecutionLimit, Simulator, SimulatorFault
from .stats import ExecutionStats

__all__ = [
    "Pipeline",
    "PipelineStats",
    "STAGES",
    "ExecutionLimit",
    "Simulator",
    "SimulatorFault",
    "ExecutionStats",
]
