"""Execution engines: functional simulator and 5-stage pipeline model.

Both engines drive one :class:`~repro.cpu.machine.MachineState` through
the predecoded executor bindings in :mod:`repro.cpu.dispatch`.
"""

from .dispatch import BINDERS, bind_program, binds
from .machine import MachineSnapshot, MachineState, RECENT_PC_DEPTH
from .pipeline import Pipeline, PipelineStats, STAGES
from .simulator import ExecutionLimit, Simulator, SimulatorFault
from .stats import ExecutionStats

__all__ = [
    "BINDERS",
    "bind_program",
    "binds",
    "MachineSnapshot",
    "MachineState",
    "RECENT_PC_DEPTH",
    "Pipeline",
    "PipelineStats",
    "STAGES",
    "ExecutionLimit",
    "Simulator",
    "SimulatorFault",
    "ExecutionStats",
]
