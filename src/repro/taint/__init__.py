"""Unified taint subsystem: bit representation, label algebra, taint plane.

* :mod:`repro.taint.bits` -- word taint masks and :class:`TaintVector`
  (the paper's 1-bit-per-byte representation, formerly ``core/taint.py``).
* :mod:`repro.taint.labels` -- :class:`TaintLabel` provenance records and
  the interned :class:`LabelTable` set algebra.
* :mod:`repro.taint.plane` -- :class:`TaintPlane`, the single owner of
  per-byte shadow storage across memory, registers, and kernel copy-ins,
  in bit mode (default) or provenance-label mode.
"""

from .bits import (
    CLEAN,
    TaintVector,
    WORD_BYTES,
    WORD_TAINTED,
    flags_from_mask,
    mask_for_bytes,
    mask_from_flags,
    word_mask_is_tainted,
)
from .labels import LabelTable, TaintLabel
from .plane import MODE_BIT, MODE_LABEL, TaintPlane

__all__ = [
    "CLEAN",
    "LabelTable",
    "MODE_BIT",
    "MODE_LABEL",
    "TaintLabel",
    "TaintPlane",
    "TaintVector",
    "WORD_BYTES",
    "WORD_TAINTED",
    "flags_from_mask",
    "mask_for_bytes",
    "mask_from_flags",
    "word_mask_is_tainted",
]
