"""The unified taint plane: one owner for every byte of shadow state.

The DSN'05 design extends each byte of storage with a taintedness bit.
Before this subsystem existed that shadow state was hand-rolled in three
places -- taint pages in :class:`~repro.mem.tainted_memory.TaintedMemory`,
word masks in :class:`~repro.mem.registers.RegisterFile`, taint bytes in
cache lines -- and snapshot/restore copied each independently.  The
:class:`TaintPlane` now *owns* the memory taint-page dict and the register
taint list (the memory/register objects share them by identity, so the
decode-once executor closures keep their captured references) and is the
single thing :meth:`~repro.cpu.machine.MachineState.snapshot` serializes
for shadow state.  Cache lines still carry their own taint bytes -- they
are a coherence-managed *copy* of plane state, snapshotted with the cache.

Two modes:

* **bit mode** (default): exactly the paper's 1-bit-per-byte plane.  No
  label storage is allocated and :attr:`flow` is None, so the dispatch
  binders skip every label call at bind time -- zero overhead vs the
  pre-refactor hot path (guarded by ``bench_simulator_throughput``).
* **label mode**: a sparse sidecar maps tainted bytes to interned
  label-set ids (:mod:`repro.taint.labels`).  The sidecar is keyed by
  physical address and updated eagerly at store/copy-in time, so it stays
  coherent whether or not accesses route through the cache hierarchy.
  Label reads are always *gated on the taintedness bit*: a stale sid
  under a clean byte is unreachable, which is what lets untaint paths
  (compare/xor-zero/AND-zero rules, overwrites) skip the sidecar
  entirely and keep bit-mode semantics identical.

Provenance queries (:meth:`provenance`, :meth:`span_sid`) resolve sids
back to :class:`~repro.taint.labels.TaintLabel` tuples for detection
exceptions, forensics, traces, and ``--json`` output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .bits import WORD_TAINTED
from .labels import LabelTable, TaintLabel

_PAGE_SHIFT = 12  # PAGE_SIZE == 4096 (repro.mem.layout); kept local to
_PAGE_MASK = (1 << _PAGE_SHIFT) - 1  # avoid an import cycle with mem.

__all__ = ["MODE_BIT", "MODE_LABEL", "TaintPlane"]

MODE_BIT = "bit"
MODE_LABEL = "label"

_MASK32 = 0xFFFFFFFF


class TaintPlane:
    """Per-byte shadow storage plus (optionally) provenance-label algebra.

    Args:
        mode: ``"bit"`` for the paper's 1-bit plane, ``"label"`` to attach
            the provenance sidecar and label table.
    """

    def __init__(self, mode: str = MODE_BIT) -> None:
        if mode not in (MODE_BIT, MODE_LABEL):
            raise ValueError(f"unknown taint plane mode: {mode!r}")
        self.mode = mode
        #: Page-base -> per-byte taint bitmap.  Shared by identity with
        #: ``TaintedMemory._taint_pages``; the memory object manages page
        #: allocation, the plane owns snapshot/restore.
        self.mem_taint: Dict[int, bytearray] = {}
        #: Clean-page summary: page bases that *may* hold tainted bytes.
        #: Shared by identity with ``TaintedMemory._tainted_pages``.  The
        #: set is conservative -- every path that sets a taint bit adds
        #: the page, untaint paths never remove it -- so "base not in
        #: tainted_pages" proves the page's taint bytes are all zero and
        #: fully-clean workloads skip per-byte shadow reads entirely.
        #: :meth:`restore` recomputes it exactly from the restored pages.
        self.tainted_pages: Set[int] = set()
        #: Word taint masks for the 32 GPRs.  Shared by identity with
        #: ``RegisterFile.taints``.
        self.reg_taints: List[int] = [0] * 32
        if mode == MODE_LABEL:
            self.table: Optional[LabelTable] = LabelTable()
            #: Sparse sidecar: physical address -> label-set id.  Only
            #: consulted for bytes whose taint bit is set.
            self.mem_labels: Dict[int, int] = {}
            self.reg_labels: List[int] = [0] * 32
            self.hilo_label: int = 0
        else:
            self.table = None
            self.mem_labels = {}
            self.reg_labels = [0] * 32
            self.hilo_label = 0
        #: Active delta capture, shared with the owning TaintedMemory
        #: (``memory._cow is plane._cow`` while a capture is live).  The
        #: label mutators below feed its ``label_dirty`` page set.
        self._cow = None
        #: Back-reference to the owning TaintedMemory (set by its
        #: constructor); lets a direct ``plane.restore()`` displace the
        #: active capture.  None for standalone planes (unit tests).
        self._host = None

    @property
    def label_mode(self) -> bool:
        return self.table is not None

    @property
    def flow(self) -> Optional["TaintPlane"]:
        """Label-flow hook captured by the dispatch binders at bind time.

        None in bit mode -- the binders' ``flow is not None`` guard then
        compiles the whole label path out of the tainted slow blocks.
        """
        return self if self.table is not None else None

    # ------------------------------------------------------------------
    # label flow (label mode only; every call site is taint-gated)
    # ------------------------------------------------------------------

    def reg_sid(self, number: int) -> int:
        """Label-set id of a register (callers gate on its taint mask)."""
        return self.reg_labels[number]

    def on_load(self, rt: int, addr: int, size: int, taint_mask: int) -> None:
        """Load writeback: dest label = union over the tainted loaded bytes.

        ``taint_mask`` is the mask returned by the memory/cache read --
        the authoritative taint of the bytes actually observed (RAM taint
        pages may be stale for dirty cache lines, the returned mask never
        is).
        """
        sid = 0
        labels = self.mem_labels
        for i in range(size):
            if taint_mask >> i & 1:
                s = labels.get((addr + i) & _MASK32, 0)
                if s:
                    sid = self.table.union(sid, s) if sid else s
        self.reg_labels[rt] = sid

    def on_store(self, addr: int, size: int, rt: int, taint_mask: int) -> None:
        """Tainted store: stamp the source register's sid on tainted bytes.

        Bytes of the store whose taint bit is clear drop any stale sid so
        the sidecar stays sparse.
        """
        sid = self.reg_labels[rt]
        labels = self.mem_labels
        cow = self._cow
        for i in range(size):
            a = (addr + i) & _MASK32
            if cow is not None:
                cow.label_dirty.add(a & ~_PAGE_MASK)
            if taint_mask >> i & 1:
                labels[a] = sid
            else:
                labels.pop(a, None)

    def on_alu(self, rd: int, rs: int, ta: int, rt: int, tb: int) -> None:
        """Two-operand ALU result: union of the *taint-gated* source sids.

        ``ta``/``tb`` must be the operand taint masks read *before* the
        destination writeback (``rd`` may alias a source register).
        """
        rl = self.reg_labels
        sid = rl[rs] if ta else 0
        if tb:
            other = rl[rt]
            sid = self.table.union(sid, other) if sid else other
        rl[rd] = sid

    def on_unary(self, rd: int, rsrc: int) -> None:
        """Single tainted source (immediates, constant shifts): copy its sid."""
        rl = self.reg_labels
        rl[rd] = rl[rsrc]

    def on_hilo(self, rs: int, ta: int, rt: int, tb: int) -> None:
        """mult/div writeback into HI/LO: collapse sources into one sid."""
        rl = self.reg_labels
        sid = rl[rs] if ta else 0
        if tb:
            other = rl[rt]
            sid = self.table.union(sid, other) if sid else other
        self.hilo_label = sid

    def on_from_hilo(self, rd: int) -> None:
        """mfhi/mflo with tainted HI/LO: dest inherits the HI/LO sid."""
        self.reg_labels[rd] = self.hilo_label

    # ------------------------------------------------------------------
    # kernel / setup entry points
    # ------------------------------------------------------------------

    def label_span(self, addr: int, length: int, sid: int) -> None:
        """Stamp ``sid`` on a freshly copied-in span (no-op in bit mode).

        Also conservatively marks the covered pages in the clean-page
        summary: a labelled span is by construction a tainted span (the
        copy-in wrote the taint bits just before), so the summary must
        already consider those pages dirty.
        """
        if self.table is None or sid == 0:
            return
        labels = self.mem_labels
        dirty = self.tainted_pages
        cow = self._cow
        for i in range(length):
            a = (addr + i) & _MASK32
            labels[a] = sid
            dirty.add(a & ~_PAGE_MASK)
            if cow is not None:
                cow.label_dirty.add(a & ~_PAGE_MASK)

    def span_sid(self, addr: int, length: int, taint_mask: int) -> int:
        """Union sid over a memory span, gated by a caller-supplied mask.

        ``taint_mask`` is a per-byte bitmap (bit ``i`` = byte ``addr+i``
        tainted), typically ``memory.read_taint(addr, length).mask``.
        """
        if self.table is None:
            return 0
        sid = 0
        labels = self.mem_labels
        for i in range(length):
            if taint_mask >> i & 1:
                s = labels.get((addr + i) & _MASK32, 0)
                if s:
                    sid = self.table.union(sid, s) if sid else s
        return sid

    def provenance(self, sid: int) -> Tuple[TaintLabel, ...]:
        """Resolve a label-set id to its labels (empty in bit mode)."""
        if self.table is None or sid == 0:
            return ()
        return self.table.members(sid)

    # ------------------------------------------------------------------
    # SWIFI taint flips (fault/faults.py routes through these)
    # ------------------------------------------------------------------

    def flip_mem_taint(self, machine, addr: int) -> Tuple[int, int, int]:
        """Flip one byte's memory taint bit through the machine's data path.

        Routing through ``mem_read``/``mem_write`` keeps PR 2 semantics:
        with caches enabled the flip lands in the hierarchy like any
        store (and costs exactly one read + one write, so cache counters
        match the pre-plane implementation).  In label mode a 0->1 flip
        allocates a fault-injection label (the byte is now tainted with a
        known synthetic origin); a 1->0 flip drops the byte's sid.
        Returns ``(value, taint_before, taint_after)``.
        """
        value, taint = machine.mem_read(addr, 1)
        new_taint = taint ^ 1
        machine.mem_write(addr, 1, value, new_taint)
        if self.table is not None:
            a = addr & _MASK32
            if self._cow is not None:
                self._cow.label_dirty.add(a & ~_PAGE_MASK)
            if new_taint:
                label_id = self.table.new_label(
                    source_kind="fault-injection",
                    offset_range=(a, a + 1),
                    insn_index=machine.stats.instructions,
                )
                self.mem_labels[a] = self.table.singleton(label_id)
            else:
                self.mem_labels.pop(a, None)
        return value, taint, new_taint

    def flip_reg_taint(self, number: int, mask: int, insn_index: int = 0) -> Tuple[int, int]:
        """XOR a register's word taint mask; manage its label in label mode."""
        taint = self.reg_taints[number]
        new_taint = (taint ^ mask) & WORD_TAINTED
        self.reg_taints[number] = new_taint
        if self.table is not None:
            if not new_taint:
                self.reg_labels[number] = 0
            elif not taint:
                label_id = self.table.new_label(
                    source_kind="fault-injection",
                    fd=number,
                    insn_index=insn_index,
                )
                self.reg_labels[number] = self.table.singleton(label_id)
        return taint, new_taint

    # ------------------------------------------------------------------
    # delta capture (driven by MachineState.snapshot_cow / restore_cow)
    # ------------------------------------------------------------------

    def begin_cow(self, cow) -> None:
        """Fill the eager (plane-side) half of a delta capture.

        The clean-page summary is made *exact* here (one ``any(page)``
        scan per mapped page, paid once per capture instead of once per
        restore): the live set is shrunk to the exact set, which is
        semantically invisible -- the summary only promises that absent
        pages are clean -- and the frozen copy is what every delta
        restore reinstalls, matching the legacy restore's exact
        recompute byte for byte.
        """
        summary = {base for base, page in self.mem_taint.items() if any(page)}
        tainted = self.tainted_pages
        tainted.clear()
        tainted.update(summary)
        cow.tainted_summary = frozenset(summary)
        cow.reg_taints = tuple(self.reg_taints)
        if self.table is not None:
            by_page: Dict[int, List[Tuple[int, int]]] = {}
            for addr, sid in self.mem_labels.items():
                by_page.setdefault(addr & ~_PAGE_MASK, []).append((addr, sid))
            cow.labels_by_page = {
                base: tuple(entries) for base, entries in by_page.items()
            }
            cow.reg_labels = tuple(self.reg_labels)
            cow.hilo_label = self.hilo_label
            cow.labels_hwm = len(self.table.labels)
            cow.sets_hwm = len(self.table.sets)
        self._cow = cow

    def restore_cow(self, cow) -> None:
        """Delta-restore shadow state; the capture stays active.

        Must run *after* ``TaintedMemory.restore_cow`` (fresh pages are
        dropped there from both page dicts; a dirty shadow page that no
        longer exists was fresh, so it is skipped here).  The caller
        (:meth:`MachineState.restore_cow`) clears the dirty sets once
        both halves are done.
        """
        baseline = cow.shadow_baseline
        mem_taint = self.mem_taint
        for base in cow.shadow_dirty:
            page = mem_taint.get(base)
            if page is not None:
                page[:] = baseline[base]
        tainted = self.tainted_pages
        tainted.clear()
        tainted.update(cow.tainted_summary)
        self.reg_taints[:] = cow.reg_taints
        if self.table is not None:
            if cow.label_dirty:
                dirty = cow.label_dirty
                labels = self.mem_labels
                for addr in [a for a in labels if (a & ~_PAGE_MASK) in dirty]:
                    del labels[addr]
                by_page = cow.labels_by_page or {}
                for base in dirty:
                    for addr, sid in by_page.get(base, ()):
                        labels[addr] = sid
            self.reg_labels[:] = cow.reg_labels
            self.hilo_label = cow.hilo_label
            self.table.truncate(cow.labels_hwm, cow.sets_hwm)

    # ------------------------------------------------------------------
    # snapshot / restore (the one serialization point for shadow state)
    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple:
        """Immutable copy of all shadow state (both modes).

        Shape: ``(mode, taint_pages, reg_taints, label_state)`` where
        ``label_state`` is None in bit mode.
        """
        if self.table is None:
            label_state = None
        else:
            label_state = (
                dict(self.mem_labels),
                tuple(self.reg_labels),
                self.hilo_label,
                self.table.snapshot(),
            )
        return (
            self.mode,
            {base: bytes(page) for base, page in self.mem_taint.items()},
            tuple(self.reg_taints),
            label_state,
        )

    def restore(self, snapshot: Tuple) -> None:
        """Restore in place: every shared container keeps its identity.

        The clean-page summary is not part of the snapshot tuple (the
        shape predates it and stays stable); it is recomputed *exactly*
        from the restored taint pages, which also sheds the conservative
        over-approximation a long run accumulates.
        """
        mode, taint_pages, reg_taints, label_state = snapshot
        if mode != self.mode:
            raise ValueError(
                f"taint plane mode mismatch: snapshot is {mode!r}, "
                f"plane is {self.mode!r}"
            )
        if self._host is not None and self._host._cow is not None:
            # A wholesale rewrite invalidates delta tracking: complete
            # and displace the active capture first (idempotent; the
            # memory's own restore() guard does the same).
            self._host.release_cow()
        self.mem_taint.clear()
        self.tainted_pages.clear()
        for base, data in taint_pages.items():
            self.mem_taint[base] = bytearray(data)
            if any(data):
                self.tainted_pages.add(base)
        self.reg_taints[:] = reg_taints
        if label_state is not None:
            mem_labels, reg_labels, hilo_label, table_state = label_state
            self.mem_labels.clear()
            self.mem_labels.update(mem_labels)
            self.reg_labels[:] = reg_labels
            self.hilo_label = hilo_label
            self.table.restore(table_state)
