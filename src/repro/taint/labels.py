"""Provenance labels and the interned label-set table (label-mode algebra).

In label mode every tainted byte carries, next to its taintedness bit, a
small integer naming a *label set*: which external inputs the byte's value
is derived from.  Two pieces make that cheap enough to run under Table 1
propagation:

* :class:`TaintLabel` -- one immutable record per external-input event
  (a ``read``/``recv`` copy-in, an argv/env string, a SWIFI taint flip).
  Labels are allocated by the kernel at copy-in time, never during
  propagation.
* :class:`LabelTable` -- an append-only arena of labels plus an interned
  table of label *sets*.  A set id (``sid``) is an index into the table;
  sid 0 is the empty set (clean / unknown origin).  Union of two sids is
  memoized, so steady-state propagation is a dict hit returning an int --
  the hot path stays integer-compare, exactly like the 1-bit mode.

The table is deliberately not clever: real runs allocate a handful of
labels (one per input syscall) and a few dozen interned sets, so plain
dicts beat any packed encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["LabelTable", "TaintLabel"]


@dataclass(frozen=True)
class TaintLabel:
    """One external-input event that introduced taint.

    Attributes:
        source_kind: origin class -- ``"net"``, ``"file"``, ``"stdin"``,
            ``"argv"``, ``"env"``, or ``"fault-injection"``.
        syscall: name of the input syscall (``"read"``/``"recv"``) when the
            taint entered through one, else None.
        fd: file descriptor of the input syscall, or the argv/env index
            for command-line provenance, else None.
        offset_range: half-open ``[start, end)`` byte range within that
            input stream (per-fd running offset for syscalls, per-string
            offsets for argv/env).
        insn_index: retired-instruction index when the label was allocated.
    """

    source_kind: str
    syscall: Optional[str] = None
    fd: Optional[int] = None
    offset_range: Tuple[int, int] = (0, 0)
    insn_index: int = 0

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``recv(fd=4) bytes 96..99``."""
        if self.syscall is not None:
            source = f"{self.syscall}(fd={self.fd})"
        elif self.fd is not None:
            source = f"{self.source_kind}[{self.fd}]"
        else:
            source = self.source_kind
        start, end = self.offset_range
        if end > start:
            return f"{source} bytes {start}..{end - 1}"
        return source

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form used by ``--json`` output and the trace."""
        return {
            "source_kind": self.source_kind,
            "syscall": self.syscall,
            "fd": self.fd,
            "offset_range": list(self.offset_range),
            "insn_index": self.insn_index,
            "describe": self.describe(),
        }


class LabelTable:
    """Append-only label arena + interned label-set table with memoized union.

    Label ids are 1-based (`0` is reserved so a zero in any label sidecar
    always means "no provenance").  Set ids index :attr:`sets`; sid 0 is
    interned to the empty set at construction.
    """

    def __init__(self) -> None:
        self.labels: List[TaintLabel] = []
        #: sid -> sorted tuple of label ids.  sets[0] == ().
        self.sets: List[Tuple[int, ...]] = [()]
        self._intern: Dict[Tuple[int, ...], int] = {(): 0}
        self._singletons: Dict[int, int] = {}
        self._union_memo: Dict[Tuple[int, int], int] = {}

    # -- counters (surfaced as obs metrics) --------------------------------

    @property
    def allocated_labels(self) -> int:
        """Number of :class:`TaintLabel` records allocated so far."""
        return len(self.labels)

    @property
    def interned_sets(self) -> int:
        """Number of distinct label sets interned (including the empty set)."""
        return len(self.sets)

    # -- allocation ---------------------------------------------------------

    def new_label(self, **fields) -> int:
        """Allocate a fresh :class:`TaintLabel`; returns its 1-based id."""
        self.labels.append(TaintLabel(**fields))
        return len(self.labels)

    def label(self, label_id: int) -> TaintLabel:
        """Look up a label by its 1-based id."""
        return self.labels[label_id - 1]

    def singleton(self, label_id: int) -> int:
        """Sid of the one-element set ``{label_id}`` (interned)."""
        sid = self._singletons.get(label_id)
        if sid is None:
            sid = self._intern_set((label_id,))
            self._singletons[label_id] = sid
        return sid

    def _intern_set(self, ids: Tuple[int, ...]) -> int:
        sid = self._intern.get(ids)
        if sid is None:
            sid = len(self.sets)
            self.sets.append(ids)
            self._intern[ids] = sid
        return sid

    # -- algebra ------------------------------------------------------------

    def union(self, a: int, b: int) -> int:
        """Sid of ``sets[a] | sets[b]``; memoized, symmetric, O(1) repeat."""
        if a == b or b == 0:
            return a
        if a == 0:
            return b
        key = (a, b) if a < b else (b, a)
        sid = self._union_memo.get(key)
        if sid is None:
            merged = tuple(sorted(set(self.sets[a]) | set(self.sets[b])))
            sid = self._intern_set(merged)
            self._union_memo[key] = sid
        return sid

    def members(self, sid: int) -> Tuple[TaintLabel, ...]:
        """The labels in set ``sid`` (allocation order)."""
        return tuple(self.labels[i - 1] for i in self.sets[sid])

    # -- delta restore (high-water-mark truncation) --------------------------

    def truncate(self, labels_hwm: int, sets_hwm: int) -> None:
        """Roll back to the given high-water marks, in place.

        The arenas are append-only, so every entry past the marks is a
        post-capture allocation; dropping them (and pruning cache entries
        that reference them) restores exactly the capture-time *algebra*.
        The pruned caches may retain entries that were only observed after
        capture but whose operands and result all predate it -- those cache
        a pure function (set union / interning), so resolution semantics
        are identical to a full-copy restore (see DESIGN.md section 4c).
        """
        if len(self.labels) <= labels_hwm and len(self.sets) <= sets_hwm:
            return
        del self.labels[labels_hwm:]
        del self.sets[sets_hwm:]
        self._intern = {ids: sid for ids, sid in self._intern.items() if sid < sets_hwm}
        self._singletons = {
            lid: sid
            for lid, sid in self._singletons.items()
            if lid <= labels_hwm and sid < sets_hwm
        }
        self._union_memo = {
            key: sid
            for key, sid in self._union_memo.items()
            if sid < sets_hwm and key[0] < sets_hwm and key[1] < sets_hwm
        }

    def truncated_snapshot(self, labels_hwm: int, sets_hwm: int) -> Tuple:
        """Legacy-shape :meth:`snapshot` as of the given high-water marks.

        Used when a delta capture is displaced and must degrade to a full
        snapshot (:meth:`CowCapture.complete`): the table itself may have
        grown past the marks, so the snapshot is built from truncated
        views with caches pruned by the same rules as :meth:`truncate`.
        """
        return (
            tuple(self.labels[:labels_hwm]),
            tuple(self.sets[:sets_hwm]),
            {ids: sid for ids, sid in self._intern.items() if sid < sets_hwm},
            {
                lid: sid
                for lid, sid in self._singletons.items()
                if lid <= labels_hwm and sid < sets_hwm
            },
            {
                key: sid
                for key, sid in self._union_memo.items()
                if sid < sets_hwm and key[0] < sets_hwm and key[1] < sets_hwm
            },
        )

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self) -> Tuple:
        """Immutable copy of the full table state."""
        return (
            tuple(self.labels),
            tuple(self.sets),
            dict(self._intern),
            dict(self._singletons),
            dict(self._union_memo),
        )

    def restore(self, snapshot: Tuple) -> None:
        """Restore in place (the table object identity is preserved)."""
        labels, sets, intern, singletons, union_memo = snapshot
        self.labels[:] = labels
        self.sets[:] = sets
        self._intern = dict(intern)
        self._singletons = dict(singletons)
        self._union_memo = dict(union_memo)
