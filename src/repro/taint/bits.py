"""Per-byte taintedness representation (the paper's extended memory model).

The DSN'05 paper (section 4.1) extends every byte of storage -- physical
memory, caches, and the register file -- with one *taintedness bit*.  A byte
is tainted when its value is derived, directly or indirectly, from external
input (network, file system, keyboard, command line, environment).

Two representations are used throughout the code base:

* **Word taint masks** -- a 4-bit integer, bit ``i`` set when byte ``i`` of a
  32-bit little-endian word is tainted.  These are what the register file and
  the ALU taint-tracking logic manipulate; they are plain ``int`` values for
  speed.
* **:class:`TaintVector`** -- an arbitrary-length per-byte taint bitmap used
  when moving buffers in and out of simulated memory (system calls, attack
  payload construction, assertions in tests).

This module is the *bit layer* of the taint subsystem: pure representation,
no storage.  Shadow storage (per-byte taint pages, register taint masks) and
the optional provenance-label sidecar live in :mod:`repro.taint.plane`;
label identity and set algebra live in :mod:`repro.taint.labels`.
``repro.core.taint`` re-exports this module for backwards compatibility.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

#: Taint mask for a fully clean 32-bit word.
CLEAN = 0

#: Taint mask for a fully tainted 32-bit word (all four bytes).
WORD_TAINTED = 0xF

#: Number of bytes in a machine word.
WORD_BYTES = 4


def word_mask_is_tainted(mask: int) -> bool:
    """Return True when any byte of a word taint mask is tainted.

    This models the OR-gate of section 4.3: the detector ORs the four
    taintedness bits of an address word and raises when the result is 1.
    """
    return (mask & WORD_TAINTED) != 0


def mask_for_bytes(length: int) -> int:
    """All-tainted mask for a span of ``length`` bytes."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return (1 << length) - 1


def mask_from_flags(flags: Iterable[bool]) -> int:
    """Build a taint mask from an iterable of per-byte booleans (byte 0 first)."""
    mask = 0
    for i, flag in enumerate(flags):
        if flag:
            mask |= 1 << i
    return mask


def flags_from_mask(mask: int, length: int) -> List[bool]:
    """Expand a taint mask into a list of per-byte booleans."""
    return [bool(mask >> i & 1) for i in range(length)]


class TaintVector:
    """A per-byte taint bitmap for a buffer of known length.

    Internally the bitmap is a single Python integer (bit ``i`` corresponds
    to byte ``i``), which keeps boolean algebra over large buffers cheap.

    >>> tv = TaintVector.tainted(4)
    >>> tv.is_fully_tainted()
    True
    >>> (tv | TaintVector.clean(4)).mask
    15
    """

    __slots__ = ("length", "mask")

    def __init__(self, length: int, mask: int = 0) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        limit = 1 << length
        if mask < 0 or mask >= limit:
            raise ValueError(
                f"mask {mask:#x} out of range for {length}-byte vector"
            )
        self.length = length
        self.mask = mask

    # -- constructors ------------------------------------------------------

    @classmethod
    def clean(cls, length: int) -> "TaintVector":
        """A fully untainted vector of ``length`` bytes."""
        return cls(length, 0)

    @classmethod
    def tainted(cls, length: int) -> "TaintVector":
        """A fully tainted vector of ``length`` bytes."""
        return cls(length, mask_for_bytes(length))

    @classmethod
    def from_flags(cls, flags: Sequence[bool]) -> "TaintVector":
        """Build from a sequence of booleans, byte 0 first."""
        return cls(len(flags), mask_from_flags(flags))

    # -- queries -----------------------------------------------------------

    def is_clean(self) -> bool:
        """True when no byte is tainted."""
        return self.mask == 0

    def is_fully_tainted(self) -> bool:
        """True when every byte is tainted."""
        return self.mask == mask_for_bytes(self.length)

    def any_tainted(self) -> bool:
        """True when at least one byte is tainted."""
        return self.mask != 0

    def count(self) -> int:
        """Number of tainted bytes."""
        return bin(self.mask).count("1")

    def __getitem__(self, index: int) -> bool:
        if not 0 <= index < self.length:
            raise IndexError(index)
        return bool(self.mask >> index & 1)

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[bool]:
        return iter(flags_from_mask(self.mask, self.length))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaintVector):
            return NotImplemented
        return self.length == other.length and self.mask == other.mask

    def __hash__(self) -> int:
        return hash((self.length, self.mask))

    def __repr__(self) -> str:
        bits = "".join("T" if flag else "." for flag in self)
        return f"TaintVector({bits!r})"

    # -- algebra -----------------------------------------------------------

    def _check_compatible(self, other: "TaintVector") -> None:
        if self.length != other.length:
            raise ValueError(
                f"length mismatch: {self.length} vs {other.length}"
            )

    def __or__(self, other: "TaintVector") -> "TaintVector":
        self._check_compatible(other)
        return TaintVector(self.length, self.mask | other.mask)

    def __and__(self, other: "TaintVector") -> "TaintVector":
        self._check_compatible(other)
        return TaintVector(self.length, self.mask & other.mask)

    def slice(self, start: int, length: int) -> "TaintVector":
        """Extract the taint of ``length`` bytes starting at ``start``."""
        if start < 0 or length < 0 or start + length > self.length:
            raise ValueError("slice out of range")
        return TaintVector(length, self.mask >> start & mask_for_bytes(length))

    def concat(self, other: "TaintVector") -> "TaintVector":
        """Concatenate two vectors (self first, i.e. at lower byte offsets)."""
        return TaintVector(
            self.length + other.length, self.mask | other.mask << self.length
        )

    def with_span(self, start: int, length: int, tainted: bool) -> "TaintVector":
        """Return a copy with ``length`` bytes at ``start`` set or cleared."""
        if start < 0 or length < 0 or start + length > self.length:
            raise ValueError("span out of range")
        span = mask_for_bytes(length) << start
        mask = self.mask | span if tainted else self.mask & ~span
        return TaintVector(self.length, mask)
