"""Tainted-pointer dereference detection (section 4.3 of the paper).

Two kinds of instructions can dereference a pointer on the simulated RISC
machine, exactly as on SimpleScalar:

* **load/store** -- the effective-address word is checked after the EX/MEM
  stage;
* **JR/JALR** -- the jump-target register is checked after the ID/EX stage.

When any byte of the checked word is tainted the instruction is marked
malicious; retiring a malicious instruction raises a security exception,
which the simulated OS turns into process termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .taint import word_mask_is_tainted

#: Kinds of tainted dereference the detector distinguishes.
KIND_LOAD = "load"
KIND_STORE = "store"
KIND_JUMP = "jump"
#: Tainted write into programmer-annotated never-tainted data (the
#: section 5.3 extension; see :mod:`repro.core.annotations`).
KIND_ANNOTATION = "annotation"

#: Kinds that dereference *data* pointers (checked after EX/MEM).
DATA_KINDS = frozenset({KIND_LOAD, KIND_STORE})

#: Kinds that dereference *code* pointers (checked after ID/EX).
CONTROL_KINDS = frozenset({KIND_JUMP})


@dataclass(frozen=True)
class Alert:
    """A tainted-pointer dereference caught by the detector.

    Matches the information the paper prints in its alert lines, e.g.
    ``44d7b0: sw $21,0($3)   $3=0x1002bc20``.
    """

    pc: int
    kind: str
    disassembly: str
    pointer_value: int
    taint_mask: int
    instruction_index: int = 0
    detail: str = ""
    #: Provenance chain in label mode: the :class:`repro.taint.labels.
    #: TaintLabel` records whose input bytes the dereferenced pointer
    #: derives from.  Empty in bit mode.  Not part of ``__str__`` so the
    #: rendered alert line (and every digest built on it) is identical
    #: across modes.
    provenance: Tuple = ()

    def __str__(self) -> str:
        return (
            f"{self.pc:x}: {self.disassembly}   "
            f"pointer={self.pointer_value:#010x} taint={self.taint_mask:#x}"
        )

    def describe_provenance(self) -> List[str]:
        """Human-readable provenance lines (empty in bit mode)."""
        return [label.describe() for label in self.provenance]


class SecurityException(Exception):
    """Raised at instruction retirement when a malicious instruction retires.

    The simulated operating system catches this exception and terminates the
    attacked process, defeating the ongoing intrusion.
    """

    def __init__(self, alert: Alert) -> None:
        super().__init__(str(alert))
        self.alert = alert


class TaintednessDetector:
    """Checks dereferenced words against a detection policy and logs alerts.

    The detector is deliberately tiny: hardware-wise it is a single OR gate
    over the four taintedness bits of the dereferenced word plus an opcode
    qualifier.  The *policy* decides which dereference kinds are checked,
    which is how the control-data-only baseline (Minos / Secure Program
    Execution) is expressed.
    """

    def __init__(self, policy: "DetectionPolicy") -> None:
        self.policy = policy
        self.alerts: List[Alert] = []

    def check(
        self,
        kind: str,
        pc: int,
        disassembly: str,
        pointer_value: int,
        taint_mask: int,
        instruction_index: int = 0,
        detail: str = "",
        provenance: Tuple = (),
    ) -> Optional[Alert]:
        """Check one dereference; return an :class:`Alert` if it is malicious.

        The caller (pipeline retirement logic or functional simulator) is
        responsible for raising :class:`SecurityException` for the returned
        alert -- detection and exception delivery are separate pipeline
        stages in the paper's design.  ``provenance`` is the pointer's
        resolved label chain when the taint plane runs in label mode.
        """
        if not word_mask_is_tainted(taint_mask):
            return None
        if not self.policy.checks(kind):
            return None
        alert = Alert(
            pc=pc,
            kind=kind,
            disassembly=disassembly,
            pointer_value=pointer_value,
            taint_mask=taint_mask,
            instruction_index=instruction_index,
            detail=detail,
            provenance=provenance,
        )
        self.alerts.append(alert)
        return alert

    def reset(self) -> None:
        """Clear logged alerts (e.g. between benchmark iterations)."""
        self.alerts.clear()


# Imported late to avoid a cycle: policy.py documents itself against the
# detector's dereference kinds.
from .policy import DetectionPolicy  # noqa: E402  (intentional tail import)
