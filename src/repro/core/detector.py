"""Compatibility shim: detection now lives in :mod:`repro.defenses`.

This module was the original home of the taintedness detector and its
alert vocabulary.  The defenses extraction (ROADMAP item 4) split it into
:mod:`repro.defenses.alerts` and :mod:`repro.defenses.taintedness`; this
shim re-exports the public surface so existing imports keep working.  The
old intentional tail import of the policy module (a documentation-cycle
dodge) is gone -- the defenses package imports cleanly top-of-file.
"""

from __future__ import annotations

from ..defenses.alerts import (
    CONTROL_KINDS,
    DATA_KINDS,
    KIND_ANNOTATION,
    KIND_JUMP,
    KIND_LOAD,
    KIND_STORE,
    Alert,
    SecurityException,
)
from ..defenses.policy import DetectionPolicy
from ..defenses.taintedness import TaintednessDetector

__all__ = [
    "Alert",
    "SecurityException",
    "TaintednessDetector",
    "DetectionPolicy",
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_JUMP",
    "KIND_ANNOTATION",
    "DATA_KINDS",
    "CONTROL_KINDS",
]
