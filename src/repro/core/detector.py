"""Compatibility shim: detection now lives in :mod:`repro.defenses`.

This module was the original home of the taintedness detector and its
alert vocabulary.  The defenses extraction (ROADMAP item 4) split it into
:mod:`repro.defenses.alerts` and :mod:`repro.defenses.taintedness`; this
shim re-exports the public surface so existing imports keep working.  The
old intentional tail import of the policy module (a documentation-cycle
dodge) is gone -- the defenses package imports cleanly top-of-file.

.. deprecated::
    Importing this shim emits a :class:`DeprecationWarning`.  No module
    under ``repro`` itself imports it (asserted in tests) -- it exists
    purely for out-of-tree callers.
"""

from __future__ import annotations

import warnings

from ..defenses.alerts import (
    CONTROL_KINDS,
    DATA_KINDS,
    KIND_ANNOTATION,
    KIND_JUMP,
    KIND_LOAD,
    KIND_STORE,
    Alert,
    SecurityException,
)
from ..defenses.policy import DetectionPolicy
from ..defenses.taintedness import TaintednessDetector

warnings.warn(
    "repro.core.detector is a deprecated compatibility shim; "
    "import from repro.defenses instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "Alert",
    "SecurityException",
    "TaintednessDetector",
    "DetectionPolicy",
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_JUMP",
    "KIND_ANNOTATION",
    "DATA_KINDS",
    "CONTROL_KINDS",
]
