"""ALU taintedness propagation rules (Table 1 of the paper).

The paper's ALU taintedness-tracking logic is a multiplexer selecting one of
five behaviours based on the opcode of the current instruction:

=====================================  =========================================
Instruction class                      Taintedness propagation
=====================================  =========================================
default ALU op  ``op r1, r2, r3``      taint(r1) = taint(r2) | taint(r3)
shift                                  tainted bytes also taint their neighbour
                                       along the shift direction
AND                                    a byte AND-ed with an untainted zero byte
                                       becomes untainted (result is constant 0)
``XOR r1, r2, r2``                     taint(r1) = 0 (compiler zero idiom)
compare                                operand registers are *untainted* (the
                                       value has been validated by the program)
=====================================  =========================================

All functions operate on 4-bit word taint masks (bit ``i`` = byte ``i``
tainted, little-endian byte order).
"""

from __future__ import annotations

from ..taint.bits import WORD_TAINTED

#: Shift direction constants.  ``SHIFT_LEFT`` moves bits toward the most
#: significant end, i.e. taint creeps toward *higher* byte indices.
SHIFT_LEFT = "left"
SHIFT_RIGHT = "right"


def propagate_default(taint_a: int, taint_b: int = 0) -> int:
    """Default rule: bitwise OR of the source operands' taint masks.

    Used for ADD/SUB/OR/XOR/NOR/MULT/DIV and every other ALU instruction
    without special handling.  A single-operand instruction passes only
    ``taint_a``.
    """
    return (taint_a | taint_b) & WORD_TAINTED


def propagate_shift(operand_taint: int, direction: str, amount_taint: int = 0) -> int:
    """Shift rule: taint spreads one byte along the direction of shifting.

    "If a byte in the operand register is tainted, then the taintedness bit
    of its adjacent byte along the direction of shifting is set to 1."

    A tainted shift amount taints the entire result (the attacker controls
    where every bit lands), which falls back to the default OR rule.
    """
    if amount_taint:
        return WORD_TAINTED
    if direction == SHIFT_LEFT:
        spread = operand_taint << 1
    elif direction == SHIFT_RIGHT:
        spread = operand_taint >> 1
    else:
        raise ValueError(f"unknown shift direction: {direction!r}")
    return (operand_taint | spread) & WORD_TAINTED


def propagate_and(
    taint_a: int, value_a: int, taint_b: int, value_b: int
) -> int:
    """AND rule: untaint each byte AND-ed with an untainted zero byte.

    The result of ``x & 0`` is the constant 0 regardless of user input, so
    the byte carries no information derived from the input.  All other byte
    positions follow the default OR rule.
    """
    result = 0
    for i in range(4):
        bit = 1 << i
        byte_a = value_a >> (8 * i) & 0xFF
        byte_b = value_b >> (8 * i) & 0xFF
        a_clean_zero = byte_a == 0 and not taint_a & bit
        b_clean_zero = byte_b == 0 and not taint_b & bit
        if a_clean_zero or b_clean_zero:
            continue
        if (taint_a | taint_b) & bit:
            result |= bit
    return result


def propagate_xor_same_register() -> int:
    """``XOR r1, r2, r2`` rule: the result is the constant 0, hence clean."""
    return 0


def propagate_compare() -> int:
    """Compare rule: the *result* of a comparison is always untainted.

    The side effect -- untainting the operand registers themselves -- is
    applied by the execution engine (see ``Simulator._untaint_compared``),
    because it mutates machine state beyond the destination register.
    """
    return 0
