"""Structured execution events: the machine's observation layer.

The execution engines publish typed events instead of exposing ad-hoc
callbacks (the old ``trace_hook``) or internal buffers (the old
``recent_pcs`` list).  Detectors, tracers, forensics recorders, and
experiment harnesses subscribe to exactly the events they need, and an
engine with **zero subscribers pays nothing**: the emit sites are guarded
by a truthiness check on the per-type subscriber list, so no event object
is ever allocated on the fast path.  This mirrors how the hardware-CFI
literature structures detectors as pipeline *observers* rather than inline
special cases.

Event taxonomy (payload fields and when each fires):

=====================  =====================================================
Event                  Fired when
=====================  =====================================================
InstructionRetired     an instruction's architectural effects have committed
                       (functional engine: after the bound executor ran; the
                       pipeline applies effects in program order at its EX
                       occupancy, so ordering is identical).  An instruction
                       that raises a fault or a security exception never
                       retires and never produces this event.
TaintPropagated        an executed instruction wrote a *tainted* result --
                       to a register (``dest_kind="reg"``), to HI/LO
                       (``"hilo"``), or to memory via a store (``"mem"``).
TaintedDereference     the detector marked an instruction malicious (a
                       tainted word used as a load/store address or a
                       jump-register target, or a tainted write into
                       annotated data).  Fired just before the
                       SecurityException is raised.
SyscallEnter           a ``syscall`` instruction is about to trap into the
                       kernel (``number`` is the value in ``$v0``).
SyscallExit            the kernel returned from the syscall (``result`` is
                       the value left in ``$v0``).
MemoryFaulted          instruction execution aborted with a machine-level
                       fault (bad fetch, unaligned or unmapped access);
                       fired just before the fault exception propagates.
                       Both engines emit it, including the pipeline's fetch
                       stage and faults raised inside the kernel while
                       servicing a syscall.
FaultInjected          the fault-injection subsystem corrupted live state
                       (a memory/register/taint-bitmap bit flip, or a
                       syscall-layer fault applied by the kernel).  Fired
                       at the moment the corruption lands.
TrialCompleted         a fault-injection campaign finished one trial and
                       classified it (detected / masked / sdc / crash /
                       timeout).
=====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

__all__ = [
    "InstructionRetired",
    "TaintPropagated",
    "TaintedDereference",
    "SyscallEnter",
    "SyscallExit",
    "MemoryFaulted",
    "FaultInjected",
    "TrialCompleted",
    "EVENT_TYPES",
    "EventBus",
    "EventLog",
]


@dataclass(frozen=True)
class InstructionRetired:
    """An instruction committed its architectural effects.

    ``index`` is the 1-based position in the dynamic instruction stream
    (equal to ``stats.instructions`` at retirement).
    """

    pc: int
    instr: Any  # repro.isa.instructions.Instr (Any avoids an import cycle)
    index: int


@dataclass(frozen=True)
class TaintPropagated:
    """An instruction produced a tainted result.

    ``dest_kind`` is ``"reg"`` (``dest`` = register number), ``"hilo"``
    (``dest`` = 0), or ``"mem"`` (``dest`` = byte address); ``taint`` is the
    word taint mask that was written.
    """

    pc: int
    instr: Any
    dest_kind: str
    dest: int
    taint: int


@dataclass(frozen=True)
class TaintedDereference:
    """The detector flagged a tainted-pointer dereference (section 4.3)."""

    pc: int
    kind: str  # "load" | "store" | "jump" | "annotation"
    alert: Any  # repro.core.detector.Alert


@dataclass(frozen=True)
class SyscallEnter:
    """A syscall instruction is trapping into the kernel."""

    pc: int
    number: int


@dataclass(frozen=True)
class SyscallExit:
    """The kernel completed a syscall."""

    pc: int
    number: int
    result: int


@dataclass(frozen=True)
class MemoryFaulted:
    """Execution aborted with a machine-level fault."""

    pc: int
    message: str


@dataclass(frozen=True)
class FaultInjected:
    """The fault injector corrupted live machine or kernel state.

    ``kind`` names the fault class (``"mem"``, ``"reg"``, ``"taint-mem"``,
    ``"taint-reg"``, ``"syscall-errno"``, ``"syscall-short-read"``,
    ``"syscall-truncate"``); ``detail`` describes exactly what was flipped.
    """

    pc: int
    kind: str
    detail: str


@dataclass(frozen=True)
class TrialCompleted:
    """A fault-injection campaign classified one finished trial."""

    index: int
    outcome: str  # "detected" | "masked" | "sdc" | "crash" | "timeout"
    detail: str


#: Every event type the engines can publish.
EVENT_TYPES: Tuple[type, ...] = (
    InstructionRetired,
    TaintPropagated,
    TaintedDereference,
    SyscallEnter,
    SyscallExit,
    MemoryFaulted,
    FaultInjected,
    TrialCompleted,
)

Handler = Callable[[Any], None]


class EventBus:
    """Typed publish/subscribe hub owned by one machine.

    The per-type subscriber lists have *stable identity*: the engines
    capture them once (``bus.subscribers(InstructionRetired)``) and guard
    every emit site with a truthiness check on the captured list, so
    subscribing or unsubscribing mid-run takes effect immediately and a
    type with no subscribers costs one list-truthiness test -- no event
    object is constructed.  ``events_emitted`` counts every event that was
    actually allocated and dispatched, which is what the zero-allocation
    tests assert on.
    """

    __slots__ = ("_subscribers", "events_emitted")

    def __init__(self) -> None:
        self._subscribers: Dict[type, List[Handler]] = {
            event_type: [] for event_type in EVENT_TYPES
        }
        self.events_emitted = 0

    def subscribers(self, event_type: type) -> List[Handler]:
        """The live subscriber list for ``event_type`` (stable identity)."""
        try:
            return self._subscribers[event_type]
        except KeyError:
            raise TypeError(f"unknown event type {event_type!r}") from None

    def subscribe(self, event_type: type, handler: Handler) -> Handler:
        """Register ``handler`` for ``event_type``; returns the handler."""
        self.subscribers(event_type).append(handler)
        return handler

    def unsubscribe(self, event_type: type, handler: Handler) -> None:
        """Remove a previously registered handler (no-op when absent)."""
        try:
            self.subscribers(event_type).remove(handler)
        except ValueError:
            pass

    def has_subscribers(self, event_type: type) -> bool:
        return bool(self.subscribers(event_type))

    def emit(self, event: Any) -> None:
        """Dispatch an already-constructed event to its subscribers.

        Engines call this only behind an ``if subscribers:`` guard; every
        constructed event passes through here exactly once.
        """
        self.events_emitted += 1
        for handler in self._subscribers[type(event)]:
            handler(event)


class EventLog:
    """A recording subscriber: appends selected events to ``self.events``.

    >>> log = EventLog(bus, (TaintedDereference,))   # doctest: +SKIP
    ... run ...
    >>> log.of(TaintedDereference)                   # doctest: +SKIP
    """

    def __init__(self, bus: EventBus, event_types: Tuple[type, ...]) -> None:
        self.events: List[Any] = []
        self._bus = bus
        self._types = tuple(event_types)
        for event_type in self._types:
            bus.subscribe(event_type, self.events.append)

    def of(self, event_type: type) -> List[Any]:
        """Recorded events of one type, in emission order."""
        return [e for e in self.events if type(e) is event_type]

    def detach(self) -> None:
        """Stop recording (unsubscribe from every type)."""
        for event_type in self._types:
            self._bus.unsubscribe(event_type, self.events.append)

    def __len__(self) -> int:
        return len(self.events)


def first_of(
    log: EventLog, event_type: type
) -> Optional[Any]:
    """First recorded event of ``event_type``, or None."""
    events = log.of(event_type)
    return events[0] if events else None
