"""Core pointer-taintedness model: taint algebra, propagation, detection."""

from .detector import (
    Alert,
    SecurityException,
    TaintednessDetector,
    KIND_JUMP,
    KIND_LOAD,
    KIND_STORE,
)
from .events import (
    EVENT_TYPES,
    EventBus,
    EventLog,
    FaultInjected,
    InstructionRetired,
    MemoryFaulted,
    SyscallEnter,
    SyscallExit,
    TaintPropagated,
    TaintedDereference,
    TrialCompleted,
)
from .policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from .taint import CLEAN, WORD_TAINTED, TaintVector, word_mask_is_tainted

__all__ = [
    "Alert",
    "SecurityException",
    "TaintednessDetector",
    "KIND_JUMP",
    "KIND_LOAD",
    "KIND_STORE",
    "EVENT_TYPES",
    "EventBus",
    "EventLog",
    "FaultInjected",
    "InstructionRetired",
    "MemoryFaulted",
    "TrialCompleted",
    "SyscallEnter",
    "SyscallExit",
    "TaintPropagated",
    "TaintedDereference",
    "ControlDataPolicy",
    "DetectionPolicy",
    "NullPolicy",
    "PointerTaintPolicy",
    "CLEAN",
    "WORD_TAINTED",
    "TaintVector",
    "word_mask_is_tainted",
]
