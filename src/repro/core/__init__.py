"""Core pointer-taintedness model: taint algebra, propagation, detection.

The event layer (:mod:`repro.core.events`) is this package's one
remaining canonical module and is imported eagerly.  Everything else
here is a **compatibility surface**: the taint bits moved to
:mod:`repro.taint`, the detector and policies to :mod:`repro.defenses`.
Those names resolve lazily (PEP 562), routed straight to their real
homes -- so ``from repro.core import PointerTaintPolicy`` keeps working
*without* importing the deprecated ``repro.core.policy``/``.detector``/
``.taint`` shim modules (which warn on import and exist only for
out-of-tree callers that import them by path).
"""

from .events import (
    EVENT_TYPES,
    EventBus,
    EventLog,
    FaultInjected,
    InstructionRetired,
    MemoryFaulted,
    SyscallEnter,
    SyscallExit,
    TaintPropagated,
    TaintedDereference,
    TrialCompleted,
)

#: Lazy attribute -> (module, attribute) in its canonical home.
_LAZY_EXPORTS = {
    # old repro.core.detector surface
    "Alert": ("repro.defenses.alerts", "Alert"),
    "SecurityException": ("repro.defenses.alerts", "SecurityException"),
    "KIND_JUMP": ("repro.defenses.alerts", "KIND_JUMP"),
    "KIND_LOAD": ("repro.defenses.alerts", "KIND_LOAD"),
    "KIND_STORE": ("repro.defenses.alerts", "KIND_STORE"),
    "TaintednessDetector": ("repro.defenses.taintedness",
                            "TaintednessDetector"),
    # old repro.core.policy surface
    "ControlDataPolicy": ("repro.defenses.policy", "ControlDataPolicy"),
    "DetectionPolicy": ("repro.defenses.policy", "DetectionPolicy"),
    "NullPolicy": ("repro.defenses.policy", "NullPolicy"),
    "PointerTaintPolicy": ("repro.defenses.policy", "PointerTaintPolicy"),
    # old repro.core.taint surface
    "CLEAN": ("repro.taint.bits", "CLEAN"),
    "WORD_TAINTED": ("repro.taint.bits", "WORD_TAINTED"),
    "TaintVector": ("repro.taint.bits", "TaintVector"),
    "word_mask_is_tainted": ("repro.taint.bits", "word_mask_is_tainted"),
}

__all__ = [
    "Alert",
    "SecurityException",
    "TaintednessDetector",
    "KIND_JUMP",
    "KIND_LOAD",
    "KIND_STORE",
    "EVENT_TYPES",
    "EventBus",
    "EventLog",
    "FaultInjected",
    "InstructionRetired",
    "MemoryFaulted",
    "TrialCompleted",
    "SyscallEnter",
    "SyscallExit",
    "TaintPropagated",
    "TaintedDereference",
    "ControlDataPolicy",
    "DetectionPolicy",
    "NullPolicy",
    "PointerTaintPolicy",
    "CLEAN",
    "WORD_TAINTED",
    "TaintVector",
    "word_mask_is_tainted",
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name), attr)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
