"""Backwards-compatible re-export of the taint bit layer.

The per-byte taint representation moved to :mod:`repro.taint.bits` when
shadow storage was unified under :class:`repro.taint.plane.TaintPlane`.
Import from :mod:`repro.taint` in new code; this module keeps every
historical ``repro.core.taint`` import working unchanged.
"""

from __future__ import annotations

from ..taint.bits import (
    CLEAN,
    TaintVector,
    WORD_BYTES,
    WORD_TAINTED,
    flags_from_mask,
    mask_for_bytes,
    mask_from_flags,
    word_mask_is_tainted,
)

__all__ = [
    "CLEAN",
    "TaintVector",
    "WORD_BYTES",
    "WORD_TAINTED",
    "flags_from_mask",
    "mask_for_bytes",
    "mask_from_flags",
    "word_mask_is_tainted",
]
