"""Backwards-compatible re-export of the taint bit layer.

The per-byte taint representation moved to :mod:`repro.taint.bits` when
shadow storage was unified under :class:`repro.taint.plane.TaintPlane`.
Import from :mod:`repro.taint` in new code; this module keeps every
historical ``repro.core.taint`` import working unchanged.

.. deprecated::
    Importing this shim emits a :class:`DeprecationWarning`.  No module
    under ``repro`` itself imports it (asserted in tests) -- it exists
    purely for out-of-tree callers.
"""

from __future__ import annotations

import warnings

from ..taint.bits import (
    CLEAN,
    TaintVector,
    WORD_BYTES,
    WORD_TAINTED,
    flags_from_mask,
    mask_for_bytes,
    mask_from_flags,
    word_mask_is_tainted,
)

warnings.warn(
    "repro.core.taint is a deprecated compatibility shim; "
    "import from repro.taint (repro.taint.bits) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "CLEAN",
    "TaintVector",
    "WORD_BYTES",
    "WORD_TAINTED",
    "flags_from_mask",
    "mask_for_bytes",
    "mask_from_flags",
    "word_mask_is_tainted",
]
