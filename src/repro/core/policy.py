"""Compatibility shim: policies now live in :mod:`repro.defenses.policy`.

Kept so that ``from repro.core.policy import PointerTaintPolicy`` and
friends keep working after the defenses extraction (ROADMAP item 4).

.. deprecated::
    Importing this shim emits a :class:`DeprecationWarning`.  No module
    under ``repro`` itself imports it (asserted in tests) -- it exists
    purely for out-of-tree callers.
"""

from __future__ import annotations

import warnings

from ..defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)

warnings.warn(
    "repro.core.policy is a deprecated compatibility shim; "
    "import from repro.defenses.policy instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "DetectionPolicy",
    "PointerTaintPolicy",
    "ControlDataPolicy",
    "NullPolicy",
]
