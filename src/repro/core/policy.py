"""Compatibility shim: policies now live in :mod:`repro.defenses.policy`.

Kept so that ``from repro.core.policy import PointerTaintPolicy`` and
friends keep working after the defenses extraction (ROADMAP item 4).
"""

from __future__ import annotations

from ..defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)

__all__ = [
    "DetectionPolicy",
    "PointerTaintPolicy",
    "ControlDataPolicy",
    "NullPolicy",
]
