"""Annotated-data monitoring: the paper's proposed false-negative fix.

Section 5.3: "One direction that can potentially reduce the false negative
rate is to sacrifice the transparency of the proposed taintedness detection
architecture.  We can ask the programmer to annotate important data
structures that should never be tainted.  The annotated data can then be
monitored by our architecture.  Then, whenever an annotated structure
becomes tainted, an alert is raised."

A :class:`TaintWatchpoint` marks an address range as never-tainted; the
execution engines check every store against the active watchpoints and
raise the usual security exception when tainted bytes land inside one.
This catches the Table 4(B) authentication-flag overflow that the base
architecture cannot see -- at the cost of requiring source annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TaintWatchpoint:
    """An annotated 'must never become tainted' address range."""

    address: int
    length: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.address + self.length

    def overlaps(self, address: int, length: int) -> bool:
        """True when a store of ``length`` bytes at ``address`` intersects."""
        return address < self.end and self.address < address + length

    def __str__(self) -> str:
        name = self.label or "annotated data"
        return f"{name} @ [{self.address:#x}, {self.end:#x})"


class WatchpointSet:
    """The active annotations of one process."""

    def __init__(self) -> None:
        self._watchpoints: List[TaintWatchpoint] = []

    def add(self, address: int, length: int, label: str = "") -> TaintWatchpoint:
        """Annotate a range; returns the created watchpoint."""
        if length <= 0:
            raise ValueError("watchpoint length must be positive")
        watchpoint = TaintWatchpoint(address, length, label)
        self._watchpoints.append(watchpoint)
        return watchpoint

    def hit(self, address: int, length: int) -> Optional[TaintWatchpoint]:
        """First watchpoint a (tainted) store of ``length`` bytes touches."""
        for watchpoint in self._watchpoints:
            if watchpoint.overlaps(address, length):
                return watchpoint
        return None

    def restore(self, watchpoints) -> None:
        """Replace the active set (checkpoint rollback), in place."""
        self._watchpoints[:] = watchpoints

    def __len__(self) -> int:
        return len(self._watchpoints)

    def __iter__(self):
        return iter(self._watchpoints)
