"""repro: reproduction of "Defeating Memory Corruption Attacks via Pointer
Taintedness Detection" (Chen, Xu, Nakka, Kalbarczyk, Iyer -- DSN 2005).

The package provides:

* :mod:`repro.core` -- the taintedness model: per-byte taint, the Table 1
  propagation rules, dereference detection, and the detection policies
  (the paper's pointer-taintedness policy plus the Minos/SPE-style
  control-data-only baseline);
* :mod:`repro.isa`, :mod:`repro.mem`, :mod:`repro.cpu` -- the
  SimpleScalar-like simulated machine: MIPS-like ISA with assembler and
  encoder, taint-extended memory/caches/registers, functional and 5-stage
  pipeline execution engines;
* :mod:`repro.kernel` -- the simulated OS: syscalls that taint external
  input (section 4.4), an in-memory filesystem, a scripted-peer network;
* :mod:`repro.cc`, :mod:`repro.libc` -- the MiniC compiler and a libc
  (attackable dlmalloc-style allocator, printf with ``%n``) so the paper's
  exploits replay against real compiled code;
* :mod:`repro.apps`, :mod:`repro.attacks`, :mod:`repro.evalx` -- the
  evaluation programs (Figure 2, WU-FTPD, NULL HTTPD, GHTTPD, traceroute,
  SPEC-like benign workloads), attack payloads/replay, and one experiment
  runner per paper table/figure;
* :mod:`repro.obs`, :mod:`repro.api` -- the observability layer (metrics
  registry, structured JSONL tracing, profiling hooks over the event bus)
  and the stable :class:`~repro.api.Session` facade that unifies runs,
  campaigns, and experiments behind one result schema.

Quickstart (the stable facade)::

    from repro import ExecOptions, Session

    session = Session(options=ExecOptions(policy="paper", metrics=True))
    result = session.run_minic(
        'int main(void){ char b[8]; gets(b); return 0; }',
        stdin=b"A" * 32,
    )
    assert result.detected   # tainted return address caught at jr $ra
    print(result.to_json()["metrics"]["counters"]["run.instructions"])

The pre-facade helpers (``run_minic``/``run_executable``) remain
importable as stable shims.
"""

from .api import (
    ExecOptions,
    ExperimentResult,
    Session,
    TraceConfig,
    validate_result_json,
)
from .attacks.replay import RunResult, run_executable, run_minic
from .builder import build_machine
from .obs import MetricsRegistry, Observer, TraceRecorder
from .defenses import (
    Alert,
    DEFENSES,
    Detector,
    PacDetector,
    SecurityException,
    ShadowStackDetector,
    TaintednessDefense,
    TaintednessDetector,
)
from .defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from .taint.bits import TaintVector
from .cpu.pipeline import Pipeline
from .cpu.simulator import Simulator
from .isa.assembler import assemble
from .kernel.syscalls import Kernel
from .libc.build import build_program

__version__ = "1.0.0"

__all__ = [
    "ExecOptions",
    "ExperimentResult",
    "MetricsRegistry",
    "Observer",
    "Session",
    "TraceConfig",
    "TraceRecorder",
    "build_machine",
    "validate_result_json",
    "RunResult",
    "run_executable",
    "run_minic",
    "Alert",
    "SecurityException",
    "TaintednessDetector",
    "TaintednessDefense",
    "Detector",
    "ShadowStackDetector",
    "PacDetector",
    "DEFENSES",
    "ControlDataPolicy",
    "DetectionPolicy",
    "NullPolicy",
    "PointerTaintPolicy",
    "TaintVector",
    "Pipeline",
    "Simulator",
    "assemble",
    "Kernel",
    "build_program",
    "__version__",
]
