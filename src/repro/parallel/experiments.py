"""Process-pool dispatch for the evalx artifact runners.

The row-structured paper artifacts (fig2 scenarios, the two Table 2
runs, Table 3 workloads, Table 4 scenarios, coverage-matrix rows,
real-world applications) are independent executions whose row order is
fixed by construction.  This module fans the per-row unit functions
(``repro.evalx.experiments._unit_*``) out through :func:`fan_out` and
reassembles the exact list a serial run produces:

* Only ``(kind, index)`` pairs cross the pickle boundary; each worker
  imports evalx itself and looks the unit up by name, so scenarios,
  policies, and workloads never need to be picklable.
* Each unit runs against a worker-local :class:`MetricsRegistry` and
  ships its :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` dump home
  with the payload.  The parent absorbs the dumps **in row order**, so
  the caller's registry ends up with the counters a serial run would
  have produced.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from . import engine
from .engine import fan_out

__all__ = ["run_experiment_units"]

#: unit kind -> name of the per-row function in repro.evalx.experiments.
_UNIT_FUNCS = {
    "fig2": "_unit_fig2",
    "table2": "_unit_table2",
    "table3": "_unit_table3",
    "table4": "_unit_table4",
    "coverage": "_unit_coverage",
    "defense_matrix": "_unit_defense_matrix",
    "real_world": "_unit_real_world",
}


def _unit(task: Tuple[str, int]):
    """Run one artifact row in this process; return ``(payload, dump)``.

    ``dump`` is the worker-local registry dump, or ``None`` when the unit
    recorded nothing (keeps the return payload small for the common
    metrics-off units).
    """
    kind, index = task
    if engine._IN_WORKER and index == int(
        os.environ.get(engine.POISON_ENV, "-1")
    ):
        os._exit(86)  # the crash-path test seam (see repro.parallel.engine)
    # Imported lazily: in a spawn-context worker this is the first touch
    # of the evalx package.
    from ..evalx import experiments
    from ..obs.metrics import MetricsRegistry

    func = getattr(experiments, _UNIT_FUNCS[kind])
    registry = MetricsRegistry()
    payload = func(index, registry=registry)
    dump = registry.to_dict() if len(registry) else None
    return payload, dump


def run_experiment_units(
    kind: str,
    count: int,
    workers: int,
    registry: Optional["MetricsRegistry"] = None,
) -> List:
    """Fan ``count`` rows of artifact ``kind`` out to the pool.

    Returns the payloads in row order and absorbs each worker's metric
    dump into ``registry`` (also in row order, so merged counters match a
    serial run).
    """
    if kind not in _UNIT_FUNCS:
        raise ValueError(f"unknown experiment unit kind: {kind!r}")
    tasks = [(kind, i) for i in range(count)]
    results, _info = fan_out(
        _unit,
        tasks,
        workers,
        registry=registry,
        metric_prefix=f"parallel.experiment.{kind}",
    )
    payloads = []
    for item in results:
        payload, dump = item
        if registry is not None and dump is not None:
            registry.absorb(dump)
        payloads.append(payload)
    return payloads
