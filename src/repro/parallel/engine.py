"""The process pool: chunked fan-out, crash retry, deterministic merge.

Two layers live here.  :func:`fan_out` is the generic engine: it submits
picklable tasks to a ``ProcessPoolExecutor``, collects results *keyed by
task position* (completion order never matters), retries any failed task
once serially in the parent, and reports pool activity into a
:class:`~repro.obs.metrics.MetricsRegistry`.  On top of it,
:func:`run_campaign_chunks` executes a fault campaign's plan in
contiguous slices: each worker process obtains a campaign for the
workload exactly once -- inheriting the parent's prepared machine when
the pool forks, rebuilding it otherwise -- and then rollback-replays its
chunk locally through :meth:`~repro.fault.campaign.FaultCampaign.run_trial`,
reusing the existing :mod:`repro.fault.checkpoint` bundle.  The bundle
is a copy-on-write *delta* checkpoint by default: the fork inherits the
parent's capture (baseline pages are immutable ``bytes``, shared
OS-level until a worker dirties them), and every per-trial rollback in
a worker rewrites only the pages its own trial touched.  Workers never
share mutable capture state -- after the fork each process owns an
independent copy of the dirty-tracking sets, so delta restores in one
worker are invisible to every other.

Determinism argument, in one paragraph: the plan is built in the parent
from the seed and golden run only; every chunk is a contiguous slice of
that plan; each trial record carries its plan index; each trial starts
from the pre-run checkpoint of a machine whose construction is itself
deterministic; and the merge sorts by index.  Therefore worker count,
chunk boundaries, scheduling order, and crash-retry placement cannot
change a single record -- the campaign digest is byte-identical for
``workers`` in ``{1, 2, 8, ...}``.

Crash semantics: a worker that dies (or a chunk that raises) marks its
chunk failed; after the pool drains, failed chunks re-execute serially
in the parent process.  Only if that retry also fails does the engine
raise :class:`ParallelExecutionError` naming the chunk and cause.  A
``KeyboardInterrupt`` cancels queued chunks and re-raises promptly
(in-flight trials are bounded by the campaign watchdog), so the engine
never hangs.

Test seam: setting the ``REPRO_PARALLEL_POISON_INDEX`` environment
variable makes pool *workers* (never the parent) kill themselves with
``os._exit`` when they reach that plan index -- the harness's own
fault-injection hook, used by the worker-crash tests to prove the
retry-and-merge path preserves the digest.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from ..fault.campaign import FaultCampaign, TrialRecord
from ..fault.faults import FaultSpec
from ..fault.triggers import Trigger
from ..fault.workloads import Workload

__all__ = [
    "ChunkOutcome",
    "ChunkTask",
    "FanOutInfo",
    "ParallelExecutionError",
    "fan_out",
    "plan_chunks",
    "resolve_workers",
    "run_campaign_chunks",
]

#: Target chunks per worker: >1 so a straggler chunk load-balances, small
#: enough that per-chunk dispatch overhead stays negligible.
CHUNKS_PER_WORKER = 4

#: Environment variable naming a plan index at which a pool *worker*
#: (never the parent) exits abruptly -- the crash-path test seam.
POISON_ENV = "REPRO_PARALLEL_POISON_INDEX"

#: True only inside pool worker processes (set by the pool initializer).
_IN_WORKER = False

#: ``(campaign_key, campaign)`` of the parent's prepared campaign.  Set
#: before the pool is created so fork-started workers inherit the built
#: machine (decode, bindings, checkpoint) instead of rebuilding it; also
#: what makes the parent's serial retry path reuse its own machine.
_FORK_CAMPAIGN: Optional[Tuple[tuple, FaultCampaign]] = None

#: Per-process campaign cache for spawn-started (or workload-switching)
#: workers: one golden rebuild per (workload, config) per process.
_WORKER_CAMPAIGNS: dict = {}


class ParallelExecutionError(RuntimeError):
    """A chunk failed in a worker *and* in the serial in-parent retry."""

    def __init__(self, task_index: int, cause: BaseException) -> None:
        super().__init__(
            f"chunk {task_index} failed in a pool worker and again in the "
            f"serial in-parent retry: {type(cause).__name__}: {cause}"
        )
        self.task_index = task_index
        self.cause = cause


@dataclass(frozen=True)
class FanOutInfo:
    """What one :func:`fan_out` call did (for stats and pool metrics)."""

    workers: int
    tasks: int
    start_method: str
    worker_crashes: int = 0
    retried_tasks: int = 0


def resolve_workers(workers: int) -> int:
    """``0`` means one worker per available core; otherwise identity."""
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = one per core)")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def plan_chunks(
    n_items: int, workers: int, chunks_per_worker: int = CHUNKS_PER_WORKER
) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous ``(start, stop)`` slices.

    At most ``workers * chunks_per_worker`` chunks, each non-empty, in
    index order, covering every item exactly once -- the chunking is a
    pure function of ``(n_items, workers)``, so the work distribution is
    itself reproducible.
    """
    if n_items <= 0:
        return []
    if workers < 1:
        raise ValueError("plan_chunks needs at least one worker")
    n_chunks = min(n_items, max(1, workers * chunks_per_worker))
    base, extra = divmod(n_items, n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks


def _pool_initializer() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _pool_context():
    """Prefer ``fork`` (workers inherit the parent's built campaign and
    warm toolchain caches); fall back to ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def fan_out(
    func: Callable,
    tasks: Sequence,
    workers: int,
    registry=None,
    metric_prefix: str = "parallel",
) -> Tuple[List, FanOutInfo]:
    """Run ``func(task)`` for every task, results in task order.

    ``func`` and every task must be picklable (``func`` is resolved by
    module path in spawn workers).  Failed tasks -- a raised exception or
    a worker process dying mid-chunk -- are retried once serially in the
    parent after the pool drains; a second failure raises
    :class:`ParallelExecutionError`.  With ``workers <= 1`` (or a single
    task) everything runs in-parent with no pool at all.

    When ``registry`` is given, the pool reports
    ``{prefix}.workers`` / ``{prefix}.chunks`` gauges, a
    ``{prefix}.tasks.dispatched`` counter, and
    ``{prefix}.worker_crashes`` / ``{prefix}.chunk_retries`` counters.
    """
    tasks = list(tasks)
    workers = min(resolve_workers(workers), max(1, len(tasks)))
    ctx = _pool_context()
    info_kwargs = {
        "workers": workers,
        "tasks": len(tasks),
        "start_method": ctx.get_start_method(),
    }
    results: List = [None] * len(tasks)
    if workers <= 1 or len(tasks) <= 1:
        for i, task in enumerate(tasks):
            results[i] = func(task)
        info = FanOutInfo(**info_kwargs)
        _record_pool_metrics(registry, metric_prefix, info)
        return results, info

    crashes = 0
    failed: List[int] = []
    pool = ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx, initializer=_pool_initializer
    )
    try:
        futures = {
            pool.submit(func, task): i for i, task in enumerate(tasks)
        }
        for future in as_completed(futures):
            index = futures[future]
            exc = future.exception()
            if exc is None:
                results[index] = future.result()
            else:
                # BrokenProcessPool (a worker died) poisons every pending
                # future; each affected task lands here and is retried
                # below.  Plain exceptions get the same retry.
                failed.append(index)
                if isinstance(exc, BrokenProcessPool):
                    crashes += 1
    except KeyboardInterrupt:
        pool.shutdown(wait=True, cancel_futures=True)
        raise
    finally:
        pool.shutdown(wait=True, cancel_futures=True)

    for index in sorted(failed):
        try:
            results[index] = func(tasks[index])
        except Exception as exc:
            raise ParallelExecutionError(index, exc) from exc
    info = FanOutInfo(
        worker_crashes=crashes, retried_tasks=len(failed), **info_kwargs
    )
    _record_pool_metrics(registry, metric_prefix, info)
    return results, info


def _record_pool_metrics(registry, prefix: str, info: FanOutInfo) -> None:
    if registry is None:
        return
    registry.gauge(f"{prefix}.workers").set(info.workers)
    registry.gauge(f"{prefix}.chunks").set(info.tasks)
    registry.counter(f"{prefix}.tasks.dispatched").inc(info.tasks)
    if info.worker_crashes:
        registry.counter(f"{prefix}.worker_crashes").inc(info.worker_crashes)
    if info.retried_tasks:
        registry.counter(f"{prefix}.chunk_retries").inc(info.retried_tasks)


# ---------------------------------------------------------------------------
# campaign chunk execution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ChunkTask:
    """One contiguous plan slice, fully picklable."""

    chunk_index: int
    workload: Workload
    config: object  # CampaignConfig (picklable dataclass)
    entries: Tuple[Tuple[int, Trigger, FaultSpec], ...]
    #: The parent's golden ``(exit_status, stdout)``: workers assert their
    #: locally rebuilt golden run reproduces it before replaying trials.
    golden_observable: Tuple[int, str]


@dataclass(frozen=True)
class ChunkOutcome:
    """A finished chunk: its records plus worker accounting."""

    chunk_index: int
    records: Tuple[TrialRecord, ...]
    worker_pid: int
    busy_seconds: float


def _campaign_key(workload: Workload, config) -> tuple:
    """The fields that determine trial execution (pool width excluded)."""
    return (
        workload.name,
        workload.source,
        workload.stdin,
        workload.argv,
        config.engine,
        config.recovery,
        config.use_caches,
        config.taint_labels,
        config.superblocks,
        config.instruction_slack,
        config.max_seconds,
        tuple(config.kinds),
    )


def _obtain_campaign(task: ChunkTask) -> FaultCampaign:
    """The per-process campaign for this chunk's workload+config.

    Resolution order: the fork-inherited parent campaign (zero rebuild),
    then this process's cache, then a fresh build -- so each worker pays
    for golden-machine construction at most once per campaign.
    """
    key = _campaign_key(task.workload, task.config)
    if _FORK_CAMPAIGN is not None and _FORK_CAMPAIGN[0] == key:
        return _FORK_CAMPAIGN[1]
    campaign = _WORKER_CAMPAIGNS.get(key)
    if campaign is None:
        campaign = FaultCampaign(task.workload, task.config)
        _WORKER_CAMPAIGNS[key] = campaign
    return campaign


def _execute_chunk(task: ChunkTask) -> ChunkOutcome:
    """Worker entry point: replay one plan slice against a local machine."""
    campaign = _obtain_campaign(task)
    campaign.prepare()
    if campaign.golden.observable != task.golden_observable:
        raise RuntimeError(
            f"worker golden run diverged from the parent's for workload "
            f"{task.workload.name!r} -- the workload is not deterministic"
        )
    poison = int(os.environ.get(POISON_ENV, "-1"))
    start = perf_counter()
    records = []
    for index, trigger, spec in task.entries:
        if _IN_WORKER and index == poison:
            os._exit(86)  # the crash-path test seam (see module docstring)
        records.append(campaign.run_trial(index, trigger, spec))
    return ChunkOutcome(
        chunk_index=task.chunk_index,
        records=tuple(records),
        worker_pid=os.getpid(),
        busy_seconds=perf_counter() - start,
    )


def run_campaign_chunks(
    campaign: FaultCampaign,
    plan: Sequence[Tuple[Trigger, FaultSpec]],
    workers: int,
    registry=None,
) -> Tuple[List[TrialRecord], dict]:
    """Execute a campaign plan on the pool; records come back unordered
    (the caller's :meth:`~repro.fault.campaign.FaultCampaign.merge` sorts
    by plan index).  Returns ``(records, pool_stats)``."""
    global _FORK_CAMPAIGN
    campaign.prepare()
    key = _campaign_key(campaign.workload, campaign.config)
    # Publish the prepared campaign before the pool forks: workers on
    # fork platforms inherit the built machine; the in-parent retry path
    # always resolves to it.
    _FORK_CAMPAIGN = (key, campaign)
    chunks = plan_chunks(len(plan), workers)
    tasks = [
        ChunkTask(
            chunk_index=ci,
            workload=campaign.workload,
            config=campaign.config,
            entries=tuple(
                (i, plan[i][0], plan[i][1]) for i in range(start, stop)
            ),
            golden_observable=campaign.golden.observable,
        )
        for ci, (start, stop) in enumerate(chunks)
    ]
    outcomes, info = fan_out(
        _execute_chunk, tasks, workers, registry=registry
    )
    records: List[TrialRecord] = []
    for outcome in outcomes:
        records.extend(outcome.records)
    if registry is not None:
        registry.counter("parallel.trials.dispatched").inc(len(plan))
        # Per-worker scoped timers under stable ordinals (pids vary run
        # to run; sorted-pid order does not).
        pids = sorted({o.worker_pid for o in outcomes})
        slots = {pid: slot for slot, pid in enumerate(pids)}
        for outcome in outcomes:
            registry.timer(
                f"parallel.worker.{slots[outcome.worker_pid]}.busy_seconds"
            ).add(outcome.busy_seconds)
    pool_stats = {
        "workers": info.workers,
        "chunks": info.tasks,
        "start_method": info.start_method,
        "worker_crashes": info.worker_crashes,
        "chunk_retries": info.retried_tasks,
    }
    return records, pool_stats
