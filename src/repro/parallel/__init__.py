"""Process-pool trial engine: deterministic fan-out, bit-identical merge.

The paper's evaluation is thousands of *independent* replays -- SWIFI
trials and per-scenario attack / false-positive runs -- and the repo's
plan -> trials -> digest pipeline is embarrassingly parallel by
construction: the seeded plan depends only on config + golden run, every
trial starts from the pre-run checkpoint, and the index-sorted record
digest is a bit-for-bit correctness oracle.  This package fans that work
out to ``multiprocessing`` workers and merges the results into the exact
artifacts serial execution produces:

* :mod:`~repro.parallel.engine` -- the generic pool (:func:`fan_out`):
  contiguous chunking, deterministic in-order merge, worker-crash
  handling (a failed chunk is retried once serially in-parent, then
  surfaced as a structured :class:`ParallelExecutionError` -- never a
  hang), and ``parallel.*`` pool metrics.  Plus the campaign chunk
  executor: each worker rebuilds (or fork-inherits) the golden machine
  once and snapshot-rollback-replays its plan slice locally.
* :mod:`~repro.parallel.experiments` -- the same pool applied to the
  evalx artifact runners (fig2 / table2 / table3 / table4 / coverage
  rows are independent runs).

The invariant everything here is tested against: **campaign digests and
experiment tables are byte-identical for any worker count at a fixed
seed.**
"""

from .engine import (
    FanOutInfo,
    ParallelExecutionError,
    fan_out,
    plan_chunks,
    resolve_workers,
    run_campaign_chunks,
)

__all__ = [
    "FanOutInfo",
    "ParallelExecutionError",
    "fan_out",
    "plan_chunks",
    "resolve_workers",
    "run_campaign_chunks",
]
