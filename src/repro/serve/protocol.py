"""Wire protocol for the detection-as-a-service gateway (api layer).

The transport is newline-delimited JSON in both directions: a client
writes one request object per line, the server writes one response
object per line.  Responses are the repo's **unified result JSON**
(:func:`repro.api.validate_result_json`) -- the same ``{"kind",
"detected", "stats", "metrics"}`` payloads a :class:`repro.api.Session`
call returns in-process -- extended with a ``"job"`` envelope
(``{"id", "seq", "queue_ms", "exec_ms", "retries"}``) so a client can
correlate out-of-order completions and see what the scheduler did to its
job.  Failures are the uniform error envelope ``{"kind": "error",
"reason": <short-code>, "error": {"type", "message"}}``, which the
unified schema also accepts.

This module is deliberately free of asyncio and sockets: it parses,
validates, and encodes dicts, so every protocol rule is unit-testable
without a running server.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "JOB_KINDS",
    "LEGACY_OPTION_KEYS",
    "MAX_LINE_BYTES",
    "OPTIONS_FIELDS",
    "PRIORITIES",
    "ProtocolError",
    "REQUEST_KINDS",
    "encode",
    "error_envelope",
    "job_envelope",
    "parse_request",
    "validate_request",
]

#: Request kinds that enqueue work on the pool.
JOB_KINDS = ("run", "campaign", "experiment", "matrix")

#: Every request kind the server understands (probes never enqueue).
REQUEST_KINDS = JOB_KINDS + ("health",)

#: Admission priorities: higher value wins a full queue (see
#: :class:`repro.serve.queue.AdmissionQueue` shedding rules).
PRIORITIES: Dict[str, int] = {"low": 0, "normal": 1, "high": 2}

#: Hard ceiling on one request line -- a client that streams an
#: unbounded line is cut off instead of growing the server's heap.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Experiment names a job may ask for (mirrors ``Session.run_experiment``).
EXPERIMENT_NAMES = (
    "fig1", "fig2", "table2", "table3", "table4", "sec54", "coverage",
    "matrix",
)


#: Fields a request's ``"options"`` object may carry -- the wire subset
#: of :class:`repro.api.ExecOptions` (observability and pool fan-out are
#: server-side concerns, so ``metrics``/``trace*``/``workers`` are not
#: accepted over the wire).
OPTIONS_FIELDS = (
    "engine", "policy", "defense", "taint_labels", "use_caches",
    "superblocks", "max_instructions",
)

#: Top-level request keys that remain accepted as deprecated aliases for
#: the same-named ``options`` fields (pre-ExecOptions clients).
LEGACY_OPTION_KEYS = (
    "engine", "policy", "defense", "taint_labels", "max_instructions",
)


class ProtocolError(ValueError):
    """A request the server refuses to enqueue.

    ``reason`` is the short machine-readable code surfaced in the error
    envelope (``bad_json``, ``bad_request``, ``queue_full``, ...).
    """

    def __init__(self, message: str, reason: str = "bad_request") -> None:
        super().__init__(message)
        self.reason = reason


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _check_str(obj: dict, key: str, required: bool = False) -> Optional[str]:
    value = obj.get(key)
    if value is None:
        _require(not required, f"{key!r} is required")
        return None
    _require(isinstance(value, str) and bool(value),
             f"{key!r} must be a non-empty string")
    return value


def _check_int(
    obj: dict, key: str, minimum: int, default: Optional[int] = None
) -> Optional[int]:
    value = obj.get(key, default)
    if value is None:
        return None
    _require(
        isinstance(value, int) and not isinstance(value, bool)
        and value >= minimum,
        f"{key!r} must be an int >= {minimum}",
    )
    return value


def _check_number(obj: dict, key: str) -> Optional[float]:
    value = obj.get(key)
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value > 0,
        f"{key!r} must be a number > 0",
    )
    return float(value)


def _check_options(obj: dict) -> None:
    """Structural checks for a request's ``"options"`` object.

    Mirrors :class:`repro.api.ExecOptions` validation for the wire
    subset; a top-level legacy alias that duplicates an ``options``
    field is rejected so precedence is never ambiguous (the same rule
    ``Session`` applies to ``options=`` plus individual kwargs).
    """
    options = obj.get("options")
    if options is None:
        return
    _require(isinstance(options, dict), "'options' must be a JSON object")
    unknown = sorted(set(options) - set(OPTIONS_FIELDS))
    _require(not unknown,
             f"unknown options field(s) {unknown}; "
             f"choose from {sorted(OPTIONS_FIELDS)}")
    overlap = sorted(set(options) & set(obj) - {"options"})
    _require(not overlap,
             f"give {overlap} inside 'options' or at the top level, "
             f"not both")
    engine = options.get("engine", "functional")
    _require(engine in ("functional", "pipeline"),
             f"options.engine={engine!r} not in ('functional', 'pipeline')")
    for flag in ("taint_labels", "use_caches", "superblocks"):
        value = options.get(flag)
        _require(value is None or isinstance(value, bool),
                 f"options.{flag} must be a bool")
    for key in ("policy", "defense"):
        _check_str(options, key)
    _check_int(options, "max_instructions", minimum=1)


def validate_request(obj: Any) -> dict:
    """Check one decoded request object; returns it (normalized).

    Raises :class:`ProtocolError` naming the first problem.  The checks
    are structural (types, enums, required fields) -- semantic failures
    (an unknown builtin workload, a MiniC compile error) surface later as
    job-level error envelopes, so one bad job never kills a connection.

    ``run`` and ``campaign`` requests may carry an ``"options"`` object
    (the wire form of :class:`repro.api.ExecOptions`, see
    :data:`OPTIONS_FIELDS`); the flat top-level keys in
    :data:`LEGACY_OPTION_KEYS` keep working as deprecated aliases.
    """
    _require(isinstance(obj, dict), "request must be a JSON object")
    kind = obj.get("kind")
    _require(kind in REQUEST_KINDS,
             f"kind={kind!r} not in {REQUEST_KINDS}")
    _check_str(obj, "id")
    priority = obj.get("priority", "normal")
    _require(priority in PRIORITIES,
             f"priority={priority!r} not in {sorted(PRIORITIES)}")
    obj["priority"] = priority
    if kind == "run":
        source = _check_str(obj, "source")
        asm = _check_str(obj, "asm")
        _require((source is None) != (asm is None),
                 "run needs exactly one of 'source' (MiniC) or 'asm'")
        _check_str(obj, "stdin")
        argv = obj.get("argv", [])
        _require(
            isinstance(argv, list) and all(isinstance(a, str) for a in argv),
            "'argv' must be a list of strings",
        )
        engine = obj.get("engine", "functional")
        _require(engine in ("functional", "pipeline"),
                 f"engine={engine!r} not in ('functional', 'pipeline')")
        _check_int(obj, "max_instructions", minimum=1)
        _check_number(obj, "deadline_s")
        _check_options(obj)
    elif kind == "campaign":
        source = _check_str(obj, "source")
        builtin = _check_str(obj, "builtin")
        _require((source is None) != (builtin is None),
                 "campaign needs exactly one of 'source' or 'builtin'")
        _check_str(obj, "stdin")
        _check_int(obj, "seed", minimum=0)
        _check_int(obj, "trials", minimum=1)
        engine = obj.get("engine", "functional")
        _require(engine in ("functional", "pipeline"),
                 f"engine={engine!r} not in ('functional', 'pipeline')")
        _check_number(obj, "deadline_s")
        _check_options(obj)
    elif kind in ("experiment", "matrix"):
        name = obj.get("name", "matrix" if kind == "matrix" else None)
        _require(name in EXPERIMENT_NAMES,
                 f"experiment name={name!r} not in {EXPERIMENT_NAMES}")
        obj["name"] = name
    return obj


def parse_request(line: bytes) -> dict:
    """Decode one request line into a validated request dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes", reason="too_large"
        )
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}", reason="bad_json")
    return validate_request(obj)


def error_envelope(
    exc_type: str,
    message: str,
    reason: str = "error",
    job: Optional[dict] = None,
) -> dict:
    """The uniform failure payload (also used by the CLI under ``--json``).

    ``reason`` is a short machine-readable code (``queue_full``, ``shed``,
    ``draining``, ``worker_crash``, ``bad_request``, ...); ``error``
    carries the human-level type and message.  The shape validates
    against :func:`repro.api.validate_result_json`.
    """
    payload = {
        "kind": "error",
        "reason": reason,
        "error": {"type": exc_type, "message": message},
    }
    if job is not None:
        payload["job"] = dict(job)
    return payload


def job_envelope(
    job_id: str, seq: int, queue_ms: float, exec_ms: float, retries: int
) -> dict:
    """The per-job accounting block attached to every served response."""
    return {
        "id": job_id,
        "seq": seq,
        "queue_ms": round(queue_ms, 3),
        "exec_ms": round(exec_ms, 3),
        "retries": retries,
    }


def encode(payload: dict) -> bytes:
    """One response line: compact, key-sorted JSON plus the newline."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode() + b"\n"
