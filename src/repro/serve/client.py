"""A small synchronous client for the gateway.

Five lines to a served verdict::

    from repro.serve.client import ServeClient

    with ServeClient(host="127.0.0.1", port=4805) as client:
        result = client.request({"kind": "run", "source": VICTIM_C,
                                 "stdin": "a" * 64})
        print(result["detected"], result["job"]["exec_ms"])

The client is deliberately dependency-free (a blocking socket plus
newline-delimited JSON) so it doubles as the reference implementation
for non-Python consumers: write one JSON line, read JSON lines back,
correlate by ``response["job"]["id"]``.  Responses may complete out of
submission order; :meth:`request` buffers strays so interleaved use
still works on one connection.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, List, Optional

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking JSON-lines client for one gateway connection."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_socket: Optional[str] = None,
        timeout: float = 120.0,
    ) -> None:
        if (unix_socket is None) == (host is None or port is None):
            raise ValueError(
                "ServeClient needs either host+port or unix_socket"
            )
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._counter = 0
        #: Responses received while waiting for a different job id.
        self._stash: Dict[str, dict] = {}

    # -- connection -----------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        if self.unix_socket is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix_socket)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol -------------------------------------------------------

    def submit(self, request: dict) -> str:
        """Send one job; returns the id responses will carry."""
        self.connect()
        request = dict(request)
        if not request.get("id"):
            self._counter += 1
            request["id"] = f"c{self._counter}"
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        return request["id"]

    def recv(self) -> dict:
        """Next response line (whatever job it belongs to)."""
        self.connect()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, request: dict) -> dict:
        """Submit one job and block until *its* terminal response."""
        job_id = self.submit(request)
        return self.wait(job_id)

    def wait(self, job_id: str) -> dict:
        """Block until the response for ``job_id`` arrives.

        Responses for other jobs are stashed for their own ``wait``
        calls; protocol-level errors that carry no job envelope (bad
        JSON, over-long line) are returned as-is since they answer the
        most recent submission on this connection.
        """
        if job_id in self._stash:
            return self._stash.pop(job_id)
        while True:
            response = self.recv()
            got = response.get("job", {}).get("id")
            if got == job_id or got is None:
                return response
            self._stash[got] = response

    def collect(self, job_ids: List[str]) -> List[dict]:
        """Gather terminal responses for many submitted jobs, in the
        order the ids are given (not completion order)."""
        return [self.wait(job_id) for job_id in job_ids]

    def health(self) -> dict:
        """Inline health probe (never queued behind jobs)."""
        self.connect()
        self._file.write(b'{"kind": "health"}\n')
        self._file.flush()
        while True:
            response = self.recv()
            if response.get("kind") == "health":
                return response
            got = response.get("job", {}).get("id")
            if got is not None:
                self._stash[got] = response

    def responses(self) -> Iterator[dict]:
        """Iterate responses until the server closes the connection."""
        while True:
            try:
                yield self.recv()
            except ConnectionError:
                return
