"""Detection-as-a-service: the resilient ``repro serve`` gateway.

The package mirrors an ``api / scheduler / infra / transport`` split so
every robustness mechanism is independently testable:

=============  ==========================================================
`protocol`     request/response schema, error + job envelopes (api)
`queue`        bounded admission queue: backpressure + shedding
               (scheduler)
`workers`      self-healing process pool, circuit breaker, per-job
               watchdog budgets, prepared-machine caching (infra)
`server`       the asyncio JSON-lines listener + graceful drain
               (transport)
`client`       a blocking reference client for tests/benches/CI
=============  ==========================================================

Start a server::

    python -m repro serve --port 4805 -j 2

and submit jobs as JSON lines -- see :mod:`repro.serve.client` for the
five-line client.  Every served result is the same unified JSON the
in-process :class:`repro.api.Session` produces (campaign digests are
byte-identical over the wire), plus a ``job`` envelope with queueing and
retry accounting.
"""

from .client import ServeClient
from .protocol import (
    JOB_KINDS,
    PRIORITIES,
    ProtocolError,
    REQUEST_KINDS,
    error_envelope,
    job_envelope,
    parse_request,
    validate_request,
)
from .queue import AdmissionQueue, PendingJob
from .server import BackgroundServer, ReproServer
from .workers import CircuitBreaker, WorkerPool

__all__ = [
    "AdmissionQueue",
    "BackgroundServer",
    "CircuitBreaker",
    "JOB_KINDS",
    "PRIORITIES",
    "PendingJob",
    "ProtocolError",
    "REQUEST_KINDS",
    "ReproServer",
    "ServeClient",
    "WorkerPool",
    "error_envelope",
    "job_envelope",
    "parse_request",
    "validate_request",
]
