"""Admission control for the gateway (scheduler layer).

A long-lived service must say *no* before it falls over: the
:class:`AdmissionQueue` is a bounded, priority-aware buffer between the
transport and the worker pool.  Three explicit outcomes exist for a
submission against a full queue:

* **reject** -- the incoming job is refused with a ``queue_full`` error
  envelope (the JSON-lines analogue of HTTP 429).  The client sees the
  rejection immediately instead of an unbounded latency tail.
* **shed** -- under sustained overload a *higher*-priority arrival may
  evict the **oldest pending job of a strictly lower priority**.  The
  shed job is not silently dropped: the caller receives it back and must
  complete it with a terminal ``shed`` error envelope, preserving the
  service invariant that every accepted job gets exactly one terminal
  response.
* **accept** -- below capacity everything is FIFO within its priority
  class; dispatch order is highest priority first, then arrival order.

The queue is synchronous and transport-agnostic (the asyncio server
wakes its scheduler with an event when ``submit`` succeeds), so the
whole admission policy is unit-testable without sockets or a loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .protocol import PRIORITIES

__all__ = ["AdmissionQueue", "PendingJob", "priority_of"]


@dataclass
class PendingJob:
    """One accepted, not-yet-dispatched job."""

    seq: int
    job_id: str
    request: dict
    priority: int
    enqueued_at: float
    #: Opaque transport context (the server stores the client writer
    #: here); the queue never touches it.
    context: Any = None


@dataclass
class AdmissionQueue:
    """Bounded priority queue with explicit backpressure and shedding."""

    capacity: int = 64
    _pending: List[PendingJob] = field(default_factory=list)
    #: Counters surfaced by the health probe.
    accepted: int = 0
    rejected: int = 0
    shed: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("queue capacity must be >= 1")

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        return len(self._pending)

    def submit(
        self, job: PendingJob
    ) -> Tuple[bool, Optional[PendingJob]]:
        """Try to admit ``job``; returns ``(accepted, shed_job)``.

        ``(True, None)`` -- admitted with spare capacity.
        ``(True, victim)`` -- admitted by shedding ``victim`` (the oldest
        pending job whose priority is strictly lower than the arrival's);
        the caller owes the victim a terminal ``shed`` response.
        ``(False, None)`` -- queue full and nothing lower-priority to
        shed; the caller owes the arrival a ``queue_full`` rejection.
        """
        if len(self._pending) < self.capacity:
            self._pending.append(job)
            self.accepted += 1
            return True, None
        victim = self._shed_victim(job.priority)
        if victim is None:
            self.rejected += 1
            return False, None
        self._pending.remove(victim)
        self._pending.append(job)
        self.accepted += 1
        self.shed += 1
        return True, victim

    def _shed_victim(self, priority: int) -> Optional[PendingJob]:
        """The oldest pending job strictly below ``priority``, if any."""
        candidates = [j for j in self._pending if j.priority < priority]
        if not candidates:
            return None
        return min(candidates, key=lambda j: j.seq)

    def pop(self) -> Optional[PendingJob]:
        """Next job to dispatch: highest priority, then arrival order."""
        if not self._pending:
            return None
        job = min(self._pending, key=lambda j: (-j.priority, j.seq))
        self._pending.remove(job)
        return job

    def snapshot(self) -> Dict[str, int]:
        """Health-probe view of the admission state."""
        return {
            "depth": self.depth,
            "capacity": self.capacity,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
        }


def priority_of(request: dict) -> int:
    """Numeric priority of a validated request (default ``normal``)."""
    return PRIORITIES[request.get("priority", "normal")]
