"""The asyncio JSON-lines gateway (transport layer).

``repro serve`` turns the one-shot :class:`repro.api.Session` into a
long-lived **detection-as-a-service** endpoint: many concurrent clients
submit run / campaign / experiment / matrix jobs over TCP or a Unix
socket, the server multiplexes them onto the self-healing
:class:`~repro.serve.workers.WorkerPool`, and each terminal result
streams back as unified result JSON stamped with a ``job`` envelope.

The request path is a straight line through the layers::

    client line --> protocol.parse_request     (api)
               --> AdmissionQueue.submit       (scheduler: backpressure)
               --> WorkerPool.run_job          (infra: budgets, self-heal)
               --> unified result JSON + job envelope back to the client

Robustness properties, each owned by exactly one seam:

* a malformed line gets a ``bad_request`` envelope and the connection
  lives on; an over-long line is cut off (``too_large``);
* a full queue rejects with ``queue_full`` (or sheds the oldest pending
  lower-priority job, which still receives a terminal ``shed``
  envelope) -- see :mod:`repro.serve.queue`;
* a crashed worker, an in-job exception, and a watchdog overrun all
  come back as structured payloads -- see :mod:`repro.serve.workers`;
* SIGTERM/SIGINT (wired by the CLI) triggers **drain mode**: new jobs
  are rejected with ``draining``, every already-accepted job still runs
  to its terminal response, streams are flushed, and the process exits 0.

``{"kind": "health"}`` answers inline (never queued) with queue depth,
worker/breaker state, and uptime, so a load balancer can probe a busy
server.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
from time import monotonic, perf_counter
from typing import Optional, Set

from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    encode,
    error_envelope,
    job_envelope,
    parse_request,
)
from .queue import AdmissionQueue, PendingJob, priority_of
from .workers import WorkerPool

__all__ = ["BackgroundServer", "ReproServer"]


class ReproServer:
    """One gateway instance: listener + admission queue + worker pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        workers: int = 1,
        queue_capacity: int = 64,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.5,
        registry=None,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.registry = registry
        self.queue = AdmissionQueue(capacity=queue_capacity)
        self.pool = WorkerPool(
            workers=workers,
            max_retries=max_retries,
            backoff_s=backoff_s,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
            registry=registry,
        )
        self.started_at: Optional[float] = None
        self.completed = 0
        #: Fused-tier totals accumulated from completed run payloads
        #: (the caches themselves live in worker processes), surfaced by
        #: the health probe.
        self.superblocks = {"runs": 0, "built": 0, "invalidated": 0,
                            "hits": 0}
        self.draining = False
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._seq = 0
        self._in_flight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._wakeup: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def run(self, ready=None) -> int:
        """Serve until drained; returns the process exit code (0).

        ``ready`` is called with the server once the socket is bound
        (the CLI prints the address, tests grab the ephemeral port).
        """
        self.loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(self.pool.workers)
        self.started_at = monotonic()
        if self.unix_socket is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client,
                path=self.unix_socket,
                limit=MAX_LINE_BYTES + 2,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client,
                self.host,
                self.port,
                limit=MAX_LINE_BYTES + 2,
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(self)
        try:
            await self._scheduler()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for writer in list(self._clients):
                with contextlib.suppress(Exception):
                    writer.close()
            # Retire connection handlers before the loop dies so their
            # cancellation is observed here, not logged as noise.
            for task in list(self._handler_tasks):
                task.cancel()
                with contextlib.suppress(
                    asyncio.CancelledError, ConnectionError
                ):
                    await task
            self.pool.shutdown()
            if self.unix_socket is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self.unix_socket)
        return 0

    def begin_drain(self) -> None:
        """Enter drain mode (idempotent; called from the loop thread)."""
        self.draining = True
        if self._wakeup is not None:
            self._wakeup.set()

    def request_drain(self) -> None:
        """Thread-safe drain trigger (used by :class:`BackgroundServer`).

        Idempotent even after the loop has exited, so a double drain
        (explicit + context-manager exit) is a no-op."""
        if self.loop is None or self.loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            self.loop.call_soon_threadsafe(self.begin_drain)

    @property
    def address(self) -> str:
        if self.unix_socket is not None:
            return self.unix_socket
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # scheduler: queue -> pool, bounded by the worker count
    # ------------------------------------------------------------------

    async def _scheduler(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                if self.draining and self._in_flight == 0:
                    return
                self._wakeup.clear()
                # Re-check after either a new submission or a completion
                # (both set the event); draining sets it too, so the
                # exit condition above is always re-evaluated.
                await self._wakeup.wait()
                continue
            await self._slots.acquire()
            self._in_flight += 1
            asyncio.ensure_future(self._run_one(job))

    async def _run_one(self, job: PendingJob) -> None:
        try:
            queue_ms = (perf_counter() - job.enqueued_at) * 1000.0
            payload, exec_s, retries = await self.pool.run_job(
                job.request, job.seq
            )
            payload = dict(payload)
            payload["job"] = job_envelope(
                job.job_id, job.seq, queue_ms, exec_s * 1000.0, retries
            )
            self.completed += 1
            fused = payload.get("stats", {}).get("superblocks")
            if isinstance(fused, dict):
                self.superblocks["runs"] += 1
                for key in ("built", "invalidated", "hits"):
                    self.superblocks[key] += int(fused.get(key, 0))
            if self.registry is not None:
                self.registry.counter("serve.jobs.completed").inc()
            await self._send(job.context, payload)
        finally:
            self._in_flight -= 1
            self._slots.release()
            self._wakeup.set()

    # ------------------------------------------------------------------
    # transport: one task per connection
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._clients.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, error_envelope(
                        "ProtocolError",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                        reason="too_large",
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    await self._send(writer, error_envelope(
                        "ProtocolError", str(exc), reason=exc.reason
                    ))
                    continue
                if request["kind"] == "health":
                    await self._send(writer, self.health())
                    continue
                await self._admit(request, writer)
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Shutdown-time cancellation from ``run``'s cleanup; finishing
            # normally keeps asyncio's streams done-callback quiet.
            pass
        finally:
            self._clients.discard(writer)
            if task is not None:
                self._handler_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _admit(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        seq = self._seq
        self._seq += 1
        job_id = request.get("id") or f"job-{seq}"
        stamp = {"id": job_id, "seq": seq}
        if self.draining:
            await self._send(writer, error_envelope(
                "Draining",
                "server is draining; submit to another instance",
                reason="draining",
                job=stamp,
            ))
            return
        job = PendingJob(
            seq=seq,
            job_id=job_id,
            request=request,
            priority=priority_of(request),
            enqueued_at=perf_counter(),
            context=writer,
        )
        accepted, shed = self.queue.submit(job)
        if not accepted:
            if self.registry is not None:
                self.registry.counter("serve.jobs.rejected").inc()
            await self._send(writer, error_envelope(
                "QueueFull",
                f"admission queue at capacity "
                f"({self.queue.capacity} pending jobs)",
                reason="queue_full",
                job=stamp,
            ))
            return
        if self.registry is not None:
            self.registry.counter("serve.jobs.accepted").inc()
        if shed is not None:
            if self.registry is not None:
                self.registry.counter("serve.jobs.shed").inc()
            await self._send(shed.context, error_envelope(
                "Shed",
                "pending job shed for a higher-priority arrival under "
                "sustained overload",
                reason="shed",
                job=job_envelope(
                    shed.job_id,
                    shed.seq,
                    (perf_counter() - shed.enqueued_at) * 1000.0,
                    0.0,
                    0,
                ),
            ))
        self._wakeup.set()

    async def _send(
        self, writer: Optional[asyncio.StreamWriter], payload: dict
    ) -> None:
        """Best-effort response delivery: a vanished client never takes
        the server (or another client's job) down with it."""
        if writer is None or writer.is_closing():
            return
        try:
            writer.write(encode(payload))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    # health probe
    # ------------------------------------------------------------------

    def health(self) -> dict:
        uptime = 0.0
        if self.started_at is not None:
            uptime = monotonic() - self.started_at
        hits = self.superblocks["hits"]
        built = self.superblocks["built"]
        return {
            "kind": "health",
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(uptime, 3),
            "queue": self.queue.snapshot(),
            "in_flight": self._in_flight,
            "completed": self.completed,
            "workers": self.pool.snapshot(),
            "superblocks": dict(
                self.superblocks,
                hit_rate=round((hits - built) / hits, 4) if hits else 0.0,
            ),
        }


class BackgroundServer:
    """A :class:`ReproServer` on a daemon thread, for tests and benches.

    Usage::

        with BackgroundServer(workers=2) as bg:
            client = ServeClient(host=bg.server.host, port=bg.server.port)
            ...

    Exiting the ``with`` block drains the server (every accepted job
    still completes) and joins the thread.
    """

    def __init__(self, **kwargs) -> None:
        self.server = ReproServer(**kwargs)
        self.exit_code: Optional[int] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )

    def _main(self) -> None:
        self.exit_code = asyncio.run(
            self.server.run(ready=lambda _s: self._ready.set())
        )

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread failed to come up within 30s")
        return self

    def drain(self, timeout: float = 60.0) -> None:
        self.server.request_drain()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(f"serve thread did not drain within {timeout}s")

    def __exit__(self, *exc_info) -> None:
        self.drain()
