"""The gateway's persistent worker pool (infra layer).

Jobs execute in **worker processes**, never in the server process: a
job that segfaults the interpreter (or hits the
``REPRO_PARALLEL_POISON_INDEX`` crash seam from :mod:`repro.parallel`)
takes down a disposable worker, not the service.  Three robustness
mechanisms stack on top of :class:`concurrent.futures.ProcessPoolExecutor`:

* **Self-healing** -- a ``BrokenProcessPool`` (a worker died mid-job)
  rebuilds the pool and retries the job with exponential backoff, up to
  ``max_retries`` times; a job that keeps killing workers gets a
  terminal ``worker_crash`` error envelope instead of poisoning the
  service.
* **Circuit breaker** -- ``breaker_threshold`` *consecutive* crashes
  quarantine the pool: dispatch pauses (jobs wait, none are lost) for
  ``breaker_cooldown_s``, then a single half-open probe job tests the
  water; its success closes the breaker, another crash re-opens it.
* **Per-job budgets** -- inside the worker every job runs under the
  machine watchdog (:meth:`~repro.cpu.machine.MachineState.arm_watchdog`):
  an instruction budget and/or wall-clock deadline overrun comes back as
  a structured ``ExecutionLimit`` result (``outcome="limit"`` with
  ``stats.limit.reason``), and the worker survives to take the next job.

Workers amortize machine construction across requests
(**prepared-machine caching**): compiled executables are cached by
source digest and prepared fault campaigns -- built machine, pre-run
checkpoint, golden baseline -- are cached by the same execution key the
parallel engine uses, so repeat jobs for a scenario skip
``build_machine`` entirely.  The cached checkpoint is the campaign's
copy-on-write delta capture, so a repeat job's rollbacks stay
O(pages the previous trial dirtied) for the whole life of the worker:
reuse never degrades the capture, only a config change (a new execution
key) builds a fresh machine and capture.  Determinism is untouched: a campaign's
digest is a pure function of its plan and the checkpointed machine, so
a served job's digest is byte-identical to the same ``Session`` call
in-process (asserted in tests and CI).

The crash seam is shared with PR 5's engine: pool workers mark
themselves via :func:`repro.parallel.engine._pool_initializer`, and a
worker whose job *sequence number* equals ``REPRO_PARALLEL_POISON_INDEX``
exits abruptly on the job's first attempt only -- the retry (running
after the pool healed) completes normally, which is exactly the
invariant the chaos tests pin down.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import monotonic, perf_counter
from typing import Dict, Optional, Tuple

from ..parallel import engine as _engine
from .protocol import error_envelope

__all__ = ["CircuitBreaker", "WorkerPool", "execute_job"]

#: Worker-process cache: MiniC/asm source digest -> built executable.
_EXE_CACHE: Dict[str, object] = {}

#: Worker-process cache: campaign execution key -> prepared FaultCampaign.
_CAMPAIGN_CACHE: Dict[tuple, object] = {}


# ---------------------------------------------------------------------------
# worker-side execution (runs in pool worker processes)
# ---------------------------------------------------------------------------

def _maybe_poison(seq: int, attempt: int) -> None:
    """PR 5's crash seam, re-used for serve jobs.

    Only pool *workers* (``_pool_initializer`` ran) can be poisoned, and
    only on a job's first attempt -- so the self-healing retry path is
    observable end-to-end: crash, pool rebuild, clean completion.
    """
    if not _engine._IN_WORKER or attempt:
        return
    poison = int(os.environ.get(_engine.POISON_ENV, "-1"))
    if poison >= 0 and seq == poison:
        os._exit(86)


def _cached_executable(request: dict):
    from ..isa.assembler import assemble
    from ..libc.build import build_program

    source = request.get("source")
    asm = request.get("asm")
    text = source if source is not None else asm
    key = ("minic" if source is not None else "asm",
           hashlib.sha256(text.encode("latin-1", "replace")).hexdigest())
    exe = _EXE_CACHE.get(key)
    if exe is None:
        exe = build_program(source) if source is not None else assemble(asm)
        _EXE_CACHE[key] = exe
    return exe


def _exec_options(request: dict):
    """Build the job's :class:`repro.api.ExecOptions`.

    The validated ``"options"`` object wins; the flat top-level keys
    (``engine``, ``policy``, ...) remain the deprecated-alias spelling
    for pre-ExecOptions clients.  The protocol layer already rejected
    requests that give the same knob both ways.
    """
    from ..api import ExecOptions

    merged = {
        "policy": request.get("policy", "paper"),
        "engine": request.get("engine", "functional"),
        "taint_labels": bool(request.get("taint_labels", False)),
        "defense": request.get("defense"),
    }
    if request.get("max_instructions") is not None:
        merged["max_instructions"] = request["max_instructions"]
    merged.update(request.get("options") or {})
    return ExecOptions(**merged)


def _execute_run(request: dict) -> dict:
    from ..api import Session

    session = Session(options=_exec_options(request))
    kwargs = {}
    if request.get("deadline_s") is not None:
        kwargs["max_seconds"] = request["deadline_s"]
    result = session.run_executable(
        _cached_executable(request),
        stdin=request.get("stdin", "").encode("latin-1"),
        argv=[request.get("id", "job")] + list(request.get("argv", [])),
        **kwargs,
    )
    return result.to_json()


def _execute_campaign(request: dict) -> dict:
    from ..fault.campaign import CampaignConfig, FaultCampaign
    from ..fault.workloads import Workload, builtin_workload

    if request.get("builtin") is not None:
        workload = builtin_workload(request["builtin"])
    else:
        workload = Workload(
            name=request.get("id", "<minic>"),
            source=request["source"],
            stdin=request.get("stdin", "").encode("latin-1"),
            argv=tuple(request.get("argv", ())),
        )
    options = _exec_options(request)
    config_kwargs = dict(
        seed=request.get("seed", 7),
        trials=request.get("trials", 100),
        engine=options.engine,
        recovery=request.get("recovery", "halt"),
        taint_labels=options.taint_labels,
        use_caches=options.use_caches,
        superblocks=options.superblocks,
    )
    if request.get("kinds"):
        config_kwargs["kinds"] = tuple(request["kinds"])
    if request.get("deadline_s") is not None:
        config_kwargs["max_seconds"] = request["deadline_s"]
    config = CampaignConfig(**config_kwargs)
    key = _engine._campaign_key(workload, config) + (
        config.seed, config.trials
    )
    campaign = _CAMPAIGN_CACHE.get(key)
    if campaign is None:
        # Served campaigns run serially inside their worker: the service
        # parallelizes *across* jobs, not within one.
        campaign = FaultCampaign(workload, config)
        _CAMPAIGN_CACHE[key] = campaign
    return campaign.run().to_json()


def _execute_experiment(request: dict) -> dict:
    from ..api import Session

    result = Session().run_experiment(request["name"], render=False)
    return result.to_json()


def execute_job(request: dict, seq: int, attempt: int) -> Tuple[dict, float]:
    """Pool-worker entry point: one job in, one terminal payload out.

    Never raises for job-level failures -- a bad workload, a compile
    error, a golden-run divergence all come back as error envelopes, so
    the worker (and the pool) survives every well-behaved failure.  Only
    a process death (the poison seam, a real crash) escapes, surfacing
    to the parent as ``BrokenProcessPool``.
    """
    _maybe_poison(seq, attempt)
    start = perf_counter()
    try:
        if request["kind"] == "run":
            payload = _execute_run(request)
        elif request["kind"] == "campaign":
            payload = _execute_campaign(request)
        else:  # experiment / matrix (validated upstream)
            payload = _execute_experiment(request)
    except Exception as exc:  # noqa: BLE001 -- the envelope is the contract
        payload = error_envelope(
            type(exc).__name__, str(exc), reason="job_failed"
        )
    return payload, perf_counter() - start


# ---------------------------------------------------------------------------
# server-side pool management (runs in the asyncio process)
# ---------------------------------------------------------------------------

class CircuitBreaker:
    """Crash-rate guard: closed -> open -> half-open -> closed.

    ``threshold`` *consecutive* crashes open the breaker; dispatch then
    waits out ``cooldown_s`` (jobs are delayed, never dropped), after
    which exactly one probe job runs half-open.  Success closes the
    breaker; another crash re-opens it for a fresh cooldown.
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 0.5) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.consecutive = 0
        self.trips = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    async def admit(self) -> None:
        """Wait until dispatch is allowed (returns immediately when
        closed)."""
        while True:
            if self.state == "closed":
                return
            if self.state == "open":
                remaining = self._opened_at + self.cooldown_s - monotonic()
                if remaining > 0:
                    await asyncio.sleep(remaining)
                    continue
                self.state = "half-open"
                self._probe_inflight = False
            if self.state == "half-open":
                if not self._probe_inflight:
                    self._probe_inflight = True
                    return
                await asyncio.sleep(self.cooldown_s / 4 or 0.01)

    def record_success(self) -> None:
        self.consecutive = 0
        if self.state == "half-open":
            self.state = "closed"
        self._probe_inflight = False

    def record_crash(self) -> None:
        self.consecutive += 1
        if self.state == "half-open" or (
            self.state == "closed" and self.consecutive >= self.threshold
        ):
            self.state = "open"
            self._opened_at = monotonic()
            self.trips += 1
        self._probe_inflight = False

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_crashes": self.consecutive,
            "trips": self.trips,
            "threshold": self.threshold,
        }


class WorkerPool:
    """Self-healing process pool the gateway schedules jobs onto."""

    def __init__(
        self,
        workers: int = 1,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.5,
        registry=None,
    ) -> None:
        self.workers = _engine.resolve_workers(workers)
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown_s)
        self.registry = registry
        self.crashes = 0
        self.restarts = 0
        self.jobs_ok = 0
        self.jobs_failed = 0
        self._ctx = _engine._pool_context()
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._ctx,
                initializer=_engine._pool_initializer,
            )
        return self._executor

    def _rebuild(self) -> None:
        """Replace a broken pool with a fresh one (the self-heal step)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None
        self.restarts += 1
        if self.registry is not None:
            self.registry.counter("serve.pool.restarts").inc()

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- execution ------------------------------------------------------

    async def run_job(
        self, request: dict, seq: int
    ) -> Tuple[dict, float, int]:
        """Run one job to a terminal payload; returns
        ``(payload, exec_seconds, retries)``.

        Every exit path yields a structured payload: the job's own
        result, a ``job_failed`` envelope (the job raised in-worker), or
        a ``worker_crash`` envelope (the job killed ``max_retries + 1``
        workers in a row).  The pool itself always survives.
        """
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            await self.breaker.admit()
            executor = self._ensure_executor()
            try:
                payload, exec_s = await loop.run_in_executor(
                    executor, execute_job, request, seq, attempt
                )
            except BrokenProcessPool:
                self.crashes += 1
                if self.registry is not None:
                    self.registry.counter("serve.pool.worker_crashes").inc()
                self.breaker.record_crash()
                self._rebuild()
                if attempt >= self.max_retries:
                    self.jobs_failed += 1
                    return (
                        error_envelope(
                            "WorkerCrash",
                            f"job killed its worker {attempt + 1} times; "
                            f"giving up",
                            reason="worker_crash",
                        ),
                        0.0,
                        attempt,
                    )
                attempt += 1
                await asyncio.sleep(self.backoff_s * (2 ** (attempt - 1)))
                continue
            except Exception as exc:  # dispatch-layer failure (pickling..)
                self.jobs_failed += 1
                return (
                    error_envelope(
                        type(exc).__name__, str(exc), reason="dispatch_failed"
                    ),
                    0.0,
                    attempt,
                )
            self.breaker.record_success()
            if payload.get("kind") == "error":
                self.jobs_failed += 1
            else:
                self.jobs_ok += 1
            return payload, exec_s, attempt

    # -- health ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "size": self.workers,
            "alive": self._executor is not None,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "breaker": self.breaker.snapshot(),
        }
