"""Sparse paged physical memory extended with per-byte taintedness bits.

This is the literal implementation of the paper's section 4.1: "A
taintedness bit is associated with each byte in memory.  When a memory word
is accessed by the processor, the taintedness bits are passed through the
memory hierarchy together with the actual memory words."

Pages are allocated lazily, so the full 32-bit address space is usable --
including the wild addresses (``0x61616161``) that attack payloads produce
when a corruption is allowed to proceed on an unprotected machine.

The shadow taint pages are *owned* by a :class:`repro.taint.plane.TaintPlane`
(``self._taint_pages is plane.mem_taint``); this object manages page
allocation and the per-access fast paths, while the plane is the single
snapshot/restore point for all shadow state.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..taint.bits import TaintVector
from ..taint.plane import TaintPlane
from .layout import PAGE_SIZE

_PAGE_MASK = PAGE_SIZE - 1


class MemoryFault(Exception):
    """Raised for invalid simulated accesses (bad size, misalignment)."""


class TaintedMemory:
    """Byte-addressable little-endian memory with shadow taint bits."""

    def __init__(self, plane: Optional[TaintPlane] = None) -> None:
        if plane is None:
            plane = TaintPlane()
        #: The taint plane owning this memory's shadow state (and, in label
        #: mode, the provenance sidecar keyed by physical address).
        self.plane = plane
        self._pages: Dict[int, bytearray] = {}
        # Identity-shared with the plane: pages materialize here, snapshots
        # happen there.
        self._taint_pages: Dict[int, bytearray] = plane.mem_taint
        # Identity-shared clean-page summary (see TaintPlane.tainted_pages):
        # a page base absent from this set is guaranteed all-clean, so reads
        # skip the per-byte shadow loop and clean writes skip the clearing
        # loop.  Conservative: taint-setting paths add, untaint never removes.
        self._tainted_pages = plane.tainted_pages
        #: Running count of tainted-byte writes, for statistics.
        self.tainted_bytes_written = 0

    # ------------------------------------------------------------------
    # page management
    # ------------------------------------------------------------------

    def _page(self, addr: int) -> Tuple[bytearray, bytearray, int]:
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
            self._taint_pages[base] = bytearray(PAGE_SIZE)
        return page, self._taint_pages[base], addr & _PAGE_MASK

    def mapped_pages(self) -> int:
        """Number of pages materialized so far."""
        return len(self._pages)

    def page_addresses(self) -> Tuple[int, ...]:
        """Base addresses of materialized pages, ascending (fault-target
        sampling and snapshot digests need a deterministic order)."""
        return tuple(sorted(self._pages))

    def snapshot(self) -> Tuple[Dict[int, bytes], int]:
        """Copy-out of all materialized data pages and the tainted-write
        counter.

        The shadow taint pages are deliberately *not* captured here: the
        owning :class:`~repro.taint.plane.TaintPlane` snapshots all shadow
        state (memory taint pages, register taint masks, label sidecars)
        exactly once via ``plane.snapshot()``.
        """
        return (
            {base: bytes(page) for base, page in self._pages.items()},
            self.tainted_bytes_written,
        )

    def restore(self, snapshot: Tuple[Dict[int, bytes], int]) -> None:
        """Roll memory data back to a snapshot, in place.

        Pages materialized after the snapshot are dropped, so a rolled-back
        machine cannot observe a fault trial's wild writes even through
        ``mapped_pages()``.  Taint *contents* are restored by the plane
        (``plane.restore()``); this method only keeps the taint-page key
        set aligned with the data pages so ``_page()``'s invariant (both
        dicts share one key set) survives either restore order.
        """
        pages, tainted_bytes_written = snapshot
        self._pages.clear()
        for base, data in pages.items():
            self._pages[base] = bytearray(data)
            if base not in self._taint_pages:
                self._taint_pages[base] = bytearray(PAGE_SIZE)
        for base in [b for b in self._taint_pages if b not in self._pages]:
            del self._taint_pages[base]
        self.tainted_bytes_written = tainted_bytes_written

    # ------------------------------------------------------------------
    # scalar accesses (hot path: used by the execution engines)
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> Tuple[int, int]:
        """Read ``size`` bytes; return ``(value, taint_mask)``, little-endian."""
        if size not in (1, 2, 4):
            raise MemoryFault(f"bad access size {size}")
        addr &= 0xFFFFFFFF
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
            self._taint_pages[base] = bytearray(PAGE_SIZE)
        offset = addr & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            value = int.from_bytes(page[offset : offset + size], "little")
            if base not in self._tainted_pages:
                # Clean-page fast path: the summary proves every shadow
                # byte on this page is zero.
                return value, 0
            taint = self._taint_pages[base]
            mask = 0
            for i in range(size):
                if taint[offset + i]:
                    mask |= 1 << i
            return value, mask
        # Access straddles a page boundary: fall back to byte-by-byte.
        value = 0
        mask = 0
        for i in range(size):
            byte, bit = self._read_byte(addr + i)
            value |= byte << (8 * i)
            if bit:
                mask |= 1 << i
        return value, mask

    def write(self, addr: int, size: int, value: int, taint_mask: int = 0) -> None:
        """Write ``size`` bytes of ``value`` with per-byte ``taint_mask``."""
        if size not in (1, 2, 4):
            raise MemoryFault(f"bad access size {size}")
        addr &= 0xFFFFFFFF
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
            self._taint_pages[base] = bytearray(PAGE_SIZE)
        offset = addr & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            value &= (1 << (8 * size)) - 1
            page[offset : offset + size] = value.to_bytes(size, "little")
            if taint_mask:
                self._tainted_pages.add(base)
                taint = self._taint_pages[base]
                for i in range(size):
                    bit = 1 if taint_mask >> i & 1 else 0
                    taint[offset + i] = bit
                    if bit:
                        self.tainted_bytes_written += 1
            elif base in self._tainted_pages:
                self._taint_pages[base][offset : offset + size] = bytes(size)
            # Clean write to a clean page: shadow bytes are already zero.
            return
        for i in range(size):
            self._write_byte(addr + i, value >> (8 * i) & 0xFF, bool(taint_mask >> i & 1))

    def _read_byte(self, addr: int) -> Tuple[int, int]:
        page, taint, offset = self._page(addr & 0xFFFFFFFF)
        return page[offset], taint[offset]

    def _write_byte(self, addr: int, value: int, tainted: bool) -> None:
        addr &= 0xFFFFFFFF
        page, taint, offset = self._page(addr)
        page[offset] = value & 0xFF
        taint[offset] = 1 if tainted else 0
        if tainted:
            self.tainted_bytes_written += 1
            self._tainted_pages.add(addr & ~_PAGE_MASK)

    # ------------------------------------------------------------------
    # bulk accesses (loader, system calls, tests)
    # ------------------------------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read a raw byte string (taint ignored)."""
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining > 0:
            page, _, offset = self._page(cursor & 0xFFFFFFFF)
            chunk = min(remaining, PAGE_SIZE - offset)
            out.extend(page[offset : offset + chunk])
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def read_taint(self, addr: int, length: int) -> TaintVector:
        """Read the shadow taint of a byte span."""
        mask = 0
        for i in range(length):
            if self._read_byte(addr + i)[1]:
                mask |= 1 << i
        return TaintVector(length, mask)

    def write_bytes(
        self,
        addr: int,
        data: Union[bytes, bytearray],
        taint: Union[bool, TaintVector] = False,
    ) -> None:
        """Write a byte string; ``taint`` is a bool or per-byte vector."""
        if isinstance(taint, TaintVector):
            if len(taint) != len(data):
                raise MemoryFault("taint vector length mismatch")
            for i, (byte, flag) in enumerate(zip(data, taint)):
                self._write_byte(addr + i, byte, flag)
            return
        # Uniform taint: copy page-sized slices (fast path for loaders and
        # bulk kernel I/O).
        fill = 1 if taint else 0
        cursor = addr
        position = 0
        remaining = len(data)
        while remaining > 0:
            base = cursor & 0xFFFFFFFF & ~_PAGE_MASK
            page, taint_page, offset = self._page(cursor & 0xFFFFFFFF)
            chunk = min(remaining, PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[position : position + chunk]
            if fill:
                self._tainted_pages.add(base)
                taint_page[offset : offset + chunk] = b"\x01" * chunk
            elif base in self._tainted_pages:
                taint_page[offset : offset + chunk] = bytes(chunk)
            cursor += chunk
            position += chunk
            remaining -= chunk
        if fill:
            self.tainted_bytes_written += len(data)

    def read_cstring(self, addr: int, max_length: int = 4096) -> bytes:
        """Read a NUL-terminated string (terminator excluded)."""
        out = bytearray()
        for i in range(max_length):
            byte = self._read_byte(addr + i)[0]
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    def set_taint(self, addr: int, length: int, tainted: bool) -> None:
        """Force the taint of a byte span without touching the data."""
        bit = 1 if tainted else 0
        for i in range(length):
            a = (addr + i) & 0xFFFFFFFF
            _, taint_page, offset = self._page(a)
            taint_page[offset] = bit
            if bit:
                self._tainted_pages.add(a & ~_PAGE_MASK)

    def count_tainted(self, addr: int, length: int) -> int:
        """Number of tainted bytes in a span."""
        return self.read_taint(addr, length).count()
