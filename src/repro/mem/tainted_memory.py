"""Sparse paged physical memory extended with per-byte taintedness bits.

This is the literal implementation of the paper's section 4.1: "A
taintedness bit is associated with each byte in memory.  When a memory word
is accessed by the processor, the taintedness bits are passed through the
memory hierarchy together with the actual memory words."

Pages are allocated lazily, so the full 32-bit address space is usable --
including the wild addresses (``0x61616161``) that attack payloads produce
when a corruption is allowed to proceed on an unprotected machine.

The shadow taint pages are *owned* by a :class:`repro.taint.plane.TaintPlane`
(``self._taint_pages is plane.mem_taint``); this object manages page
allocation and the per-access fast paths, while the plane is the single
snapshot/restore point for all shadow state.

Delta checkpointing: when a :class:`~repro.mem.cow.CowCapture` is active
(``self._cow``), every mutation path copy-on-writes the page's baseline
into the capture on its first post-capture write and records it in the
capture's dirty set, and every page-allocation path records fresh pages.
With no active capture (``_cow is None``) the hot paths pay one ``None``
check.  The public :meth:`snapshot`/:meth:`restore` tuple API is
unchanged -- it is the *full-copy* serialization the delta machinery
degrades to when a capture is displaced (see :mod:`repro.mem.cow`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..taint.bits import TaintVector
from ..taint.plane import TaintPlane
from .cow import CowCapture
from .layout import PAGE_SIZE

_PAGE_MASK = PAGE_SIZE - 1


class MemoryFault(Exception):
    """Raised for invalid simulated accesses (bad size, misalignment)."""


class TaintedMemory:
    """Byte-addressable little-endian memory with shadow taint bits."""

    def __init__(self, plane: Optional[TaintPlane] = None) -> None:
        if plane is None:
            plane = TaintPlane()
        #: The taint plane owning this memory's shadow state (and, in label
        #: mode, the provenance sidecar keyed by physical address).
        self.plane = plane
        self._pages: Dict[int, bytearray] = {}
        # Identity-shared with the plane: pages materialize here, snapshots
        # happen there.
        self._taint_pages: Dict[int, bytearray] = plane.mem_taint
        # Identity-shared clean-page summary (see TaintPlane.tainted_pages):
        # a page base absent from this set is guaranteed all-clean, so reads
        # skip the per-byte shadow loop and clean writes skip the clearing
        # loop.  Conservative: taint-setting paths add, untaint never removes.
        self._tainted_pages = plane.tainted_pages
        #: Running count of tainted-byte writes, for statistics.
        self.tainted_bytes_written = 0
        #: Active delta capture (None = no tracking; see module docstring).
        self._cow: Optional[CowCapture] = None
        # Back-reference so a direct ``plane.restore(tuple)`` can displace
        # the active capture before it rewrites shadow pages wholesale.
        plane._host = self

    # ------------------------------------------------------------------
    # page management
    # ------------------------------------------------------------------

    def _page(self, addr: int) -> Tuple[bytearray, bytearray, int]:
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
            self._taint_pages[base] = bytearray(PAGE_SIZE)
            if self._cow is not None:
                self._cow.fresh.add(base)
        return page, self._taint_pages[base], addr & _PAGE_MASK

    def mapped_pages(self) -> int:
        """Number of pages materialized so far."""
        return len(self._pages)

    def page_addresses(self) -> Tuple[int, ...]:
        """Base addresses of materialized pages, ascending (fault-target
        sampling and snapshot digests need a deterministic order)."""
        return tuple(sorted(self._pages))

    # ------------------------------------------------------------------
    # delta capture lifecycle (driven by MachineState.snapshot_cow)
    # ------------------------------------------------------------------

    def begin_cow(self) -> CowCapture:
        """Start a new delta capture (displacing -- and completing -- any
        active one) and return it for the plane to finish filling."""
        if self._cow is not None:
            self.release_cow()
        cow = CowCapture()
        cow.tainted_bytes_written = self.tainted_bytes_written
        self._cow = cow
        return cow

    def release_cow(self) -> Optional[CowCapture]:
        """Displace the active capture: complete it into a full snapshot
        (see :meth:`CowCapture.complete`) and detach it from the hot
        paths.  Returns the completed capture (None if none was active)."""
        cow = self._cow
        if cow is None:
            return None
        cow.complete(self, self.plane)
        self._cow = None
        self.plane._cow = None
        return cow

    def restore_cow(self, cow: CowCapture) -> None:
        """Delta-restore the data plane: drop pages materialized since
        capture (from *both* page dicts -- they share one key set) and
        rewrite only the dirtied data pages from their baselines.  The
        shadow plane is restored by :meth:`TaintPlane.restore_cow`."""
        pages = self._pages
        taints = self._taint_pages
        if cow.fresh:
            for base in cow.fresh:
                pages.pop(base, None)
                taints.pop(base, None)
        baseline = cow.data_baseline
        for base in cow.data_dirty:
            page = pages.get(base)
            if page is not None:
                page[:] = baseline[base]
        self.tainted_bytes_written = cow.tainted_bytes_written

    # ------------------------------------------------------------------
    # full-copy snapshot / restore (the compatibility serialization)
    # ------------------------------------------------------------------

    def snapshot(self) -> Tuple[Dict[int, bytes], int]:
        """Copy-out of all materialized data pages and the tainted-write
        counter.

        The shadow taint pages are deliberately *not* captured here: the
        owning :class:`~repro.taint.plane.TaintPlane` snapshots all shadow
        state (memory taint pages, register taint masks, label sidecars)
        exactly once via ``plane.snapshot()``.
        """
        return (
            {base: bytes(page) for base, page in self._pages.items()},
            self.tainted_bytes_written,
        )

    def restore(self, snapshot: Tuple[Dict[int, bytes], int]) -> None:
        """Roll memory data back to a snapshot, in place.

        Pages materialized after the snapshot are dropped, so a rolled-back
        machine cannot observe a fault trial's wild writes even through
        ``mapped_pages()``.  Taint *contents* are restored by the plane
        (``plane.restore()``); this method only keeps the taint-page key
        set aligned with the data pages so ``_page()``'s invariant (both
        dicts share one key set) survives either restore order.

        A full-copy restore rewrites pages wholesale, which invalidates
        any active delta capture's dirty tracking -- the capture is
        completed and displaced first (it keeps working, as a full
        snapshot).
        """
        if self._cow is not None:
            self.release_cow()
        pages, tainted_bytes_written = snapshot
        self._pages.clear()
        for base, data in pages.items():
            self._pages[base] = bytearray(data)
            if base not in self._taint_pages:
                self._taint_pages[base] = bytearray(PAGE_SIZE)
        for base in [b for b in self._taint_pages if b not in self._pages]:
            del self._taint_pages[base]
        self.tainted_bytes_written = tainted_bytes_written

    # ------------------------------------------------------------------
    # scalar accesses (hot path: used by the execution engines)
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> Tuple[int, int]:
        """Read ``size`` bytes; return ``(value, taint_mask)``, little-endian."""
        if size not in (1, 2, 4):
            raise MemoryFault(f"bad access size {size}")
        addr &= 0xFFFFFFFF
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
            self._taint_pages[base] = bytearray(PAGE_SIZE)
            if self._cow is not None:
                self._cow.fresh.add(base)
        offset = addr & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            value = int.from_bytes(page[offset : offset + size], "little")
            if base not in self._tainted_pages:
                # Clean-page fast path: the summary proves every shadow
                # byte on this page is zero.
                return value, 0
            taint = self._taint_pages[base]
            mask = 0
            for i in range(size):
                if taint[offset + i]:
                    mask |= 1 << i
            return value, mask
        # Access straddles a page boundary: fall back to byte-by-byte.
        value = 0
        mask = 0
        for i in range(size):
            byte, bit = self._read_byte(addr + i)
            value |= byte << (8 * i)
            if bit:
                mask |= 1 << i
        return value, mask

    def write(self, addr: int, size: int, value: int, taint_mask: int = 0) -> None:
        """Write ``size`` bytes of ``value`` with per-byte ``taint_mask``."""
        if size not in (1, 2, 4):
            raise MemoryFault(f"bad access size {size}")
        addr &= 0xFFFFFFFF
        base = addr & ~_PAGE_MASK
        page = self._pages.get(base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[base] = page
            self._taint_pages[base] = bytearray(PAGE_SIZE)
            if self._cow is not None:
                self._cow.fresh.add(base)
        offset = addr & _PAGE_MASK
        if offset + size <= PAGE_SIZE:
            cow = self._cow
            if cow is not None and base not in cow.data_dirty:
                cow.data_dirty.add(base)
                if base not in cow.fresh:
                    cow.data_baseline[base] = bytes(page)
            value &= (1 << (8 * size)) - 1
            page[offset : offset + size] = value.to_bytes(size, "little")
            if taint_mask:
                taint = self._taint_pages[base]
                if cow is not None and base not in cow.shadow_dirty:
                    cow.shadow_dirty.add(base)
                    if base not in cow.fresh:
                        cow.shadow_baseline[base] = bytes(taint)
                self._tainted_pages.add(base)
                for i in range(size):
                    bit = 1 if taint_mask >> i & 1 else 0
                    taint[offset + i] = bit
                    if bit:
                        self.tainted_bytes_written += 1
            elif base in self._tainted_pages:
                taint = self._taint_pages[base]
                if cow is not None and base not in cow.shadow_dirty:
                    cow.shadow_dirty.add(base)
                    if base not in cow.fresh:
                        cow.shadow_baseline[base] = bytes(taint)
                taint[offset : offset + size] = bytes(size)
            # Clean write to a clean page: shadow bytes are already zero.
            return
        for i in range(size):
            self._write_byte(addr + i, value >> (8 * i) & 0xFF, bool(taint_mask >> i & 1))

    def _read_byte(self, addr: int) -> Tuple[int, int]:
        page, taint, offset = self._page(addr & 0xFFFFFFFF)
        return page[offset], taint[offset]

    def _write_byte(self, addr: int, value: int, tainted: bool) -> None:
        addr &= 0xFFFFFFFF
        page, taint, offset = self._page(addr)
        base = addr & ~_PAGE_MASK
        cow = self._cow
        if cow is not None and base not in cow.data_dirty:
            cow.data_dirty.add(base)
            if base not in cow.fresh:
                cow.data_baseline[base] = bytes(page)
        page[offset] = value & 0xFF
        if tainted or base in self._tainted_pages:
            # A clean-byte write to a clean page leaves the (all-zero)
            # shadow byte untouched, so only this branch mutates shadow.
            if cow is not None and base not in cow.shadow_dirty:
                cow.shadow_dirty.add(base)
                if base not in cow.fresh:
                    cow.shadow_baseline[base] = bytes(taint)
            taint[offset] = 1 if tainted else 0
        if tainted:
            self.tainted_bytes_written += 1
            self._tainted_pages.add(base)

    # ------------------------------------------------------------------
    # bulk accesses (loader, system calls, tests)
    # ------------------------------------------------------------------

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read a raw byte string (taint ignored)."""
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining > 0:
            page, _, offset = self._page(cursor & 0xFFFFFFFF)
            chunk = min(remaining, PAGE_SIZE - offset)
            out.extend(page[offset : offset + chunk])
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def read_taint(self, addr: int, length: int) -> TaintVector:
        """Read the shadow taint of a byte span.

        Page-chunked: clean pages (per the summary set) contribute no
        bits without being scanned, and tainted pages are scanned with
        ``bytearray.find`` -- O(set bits) at C speed -- instead of one
        ``_read_byte`` per byte.
        """
        mask = 0
        produced = 0
        cursor = addr
        remaining = length
        tainted_pages = self._tainted_pages
        while remaining > 0:
            a = cursor & 0xFFFFFFFF
            _, taint, offset = self._page(a)
            chunk = min(remaining, PAGE_SIZE - offset)
            if (a & ~_PAGE_MASK) in tainted_pages:
                end = offset + chunk
                idx = taint.find(1, offset, end)
                while idx >= 0:
                    mask |= 1 << (produced + idx - offset)
                    idx = taint.find(1, idx + 1, end)
            cursor += chunk
            produced += chunk
            remaining -= chunk
        return TaintVector(length, mask)

    def write_bytes(
        self,
        addr: int,
        data: Union[bytes, bytearray],
        taint: Union[bool, TaintVector] = False,
    ) -> None:
        """Write a byte string; ``taint`` is a bool or per-byte vector."""
        if isinstance(taint, TaintVector):
            if len(taint) != len(data):
                raise MemoryFault("taint vector length mismatch")
            # Page-sliced like the uniform path below: the vector's mask
            # is chunked per page, so a mixed-taint buffer costs one data
            # slice assignment + one shadow slice per page instead of one
            # ``_write_byte`` per byte.  Straddle semantics are identical
            # (chunks split exactly at page boundaries).
            vmask = taint.mask
            cursor = addr
            position = 0
            remaining = len(data)
            while remaining > 0:
                a = cursor & 0xFFFFFFFF
                base = a & ~_PAGE_MASK
                page, taint_page, offset = self._page(a)
                chunk = min(remaining, PAGE_SIZE - offset)
                cow = self._cow
                if cow is not None and base not in cow.data_dirty:
                    cow.data_dirty.add(base)
                    if base not in cow.fresh:
                        cow.data_baseline[base] = bytes(page)
                page[offset : offset + chunk] = data[position : position + chunk]
                sub = (vmask >> position) & ((1 << chunk) - 1)
                if sub:
                    if cow is not None and base not in cow.shadow_dirty:
                        cow.shadow_dirty.add(base)
                        if base not in cow.fresh:
                            cow.shadow_baseline[base] = bytes(taint_page)
                    self._tainted_pages.add(base)
                    taint_page[offset : offset + chunk] = bytes(
                        sub >> i & 1 for i in range(chunk)
                    )
                    self.tainted_bytes_written += sub.bit_count()
                elif base in self._tainted_pages:
                    if cow is not None and base not in cow.shadow_dirty:
                        cow.shadow_dirty.add(base)
                        if base not in cow.fresh:
                            cow.shadow_baseline[base] = bytes(taint_page)
                    taint_page[offset : offset + chunk] = bytes(chunk)
                cursor += chunk
                position += chunk
                remaining -= chunk
            return
        # Uniform taint: copy page-sized slices (fast path for loaders and
        # bulk kernel I/O).
        fill = 1 if taint else 0
        cursor = addr
        position = 0
        remaining = len(data)
        while remaining > 0:
            base = cursor & 0xFFFFFFFF & ~_PAGE_MASK
            page, taint_page, offset = self._page(cursor & 0xFFFFFFFF)
            chunk = min(remaining, PAGE_SIZE - offset)
            cow = self._cow
            if cow is not None and base not in cow.data_dirty:
                cow.data_dirty.add(base)
                if base not in cow.fresh:
                    cow.data_baseline[base] = bytes(page)
            page[offset : offset + chunk] = data[position : position + chunk]
            if fill:
                if cow is not None and base not in cow.shadow_dirty:
                    cow.shadow_dirty.add(base)
                    if base not in cow.fresh:
                        cow.shadow_baseline[base] = bytes(taint_page)
                self._tainted_pages.add(base)
                taint_page[offset : offset + chunk] = b"\x01" * chunk
            elif base in self._tainted_pages:
                if cow is not None and base not in cow.shadow_dirty:
                    cow.shadow_dirty.add(base)
                    if base not in cow.fresh:
                        cow.shadow_baseline[base] = bytes(taint_page)
                taint_page[offset : offset + chunk] = bytes(chunk)
            cursor += chunk
            position += chunk
            remaining -= chunk
        if fill:
            self.tainted_bytes_written += len(data)

    def read_cstring(self, addr: int, max_length: int = 4096) -> bytes:
        """Read a NUL-terminated string (terminator excluded).

        Scans page-chunked with ``page.find(0, offset)`` instead of one
        ``_page()`` lookup per byte; pages past the terminator are never
        materialized (same as the byte-at-a-time implementation).
        """
        out = bytearray()
        cursor = addr
        remaining = max_length
        while remaining > 0:
            page, _, offset = self._page(cursor & 0xFFFFFFFF)
            chunk = min(remaining, PAGE_SIZE - offset)
            idx = page.find(0, offset, offset + chunk)
            if idx >= 0:
                out.extend(page[offset:idx])
                return bytes(out)
            out.extend(page[offset : offset + chunk])
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def set_taint(self, addr: int, length: int, tainted: bool) -> None:
        """Force the taint of a byte span without touching the data.

        Page-sliced: a taint set is one slice fill per page, a taint
        clear is skipped entirely on pages the summary proves clean
        (their shadow bytes are already zero).
        """
        cursor = addr
        remaining = length
        while remaining > 0:
            a = cursor & 0xFFFFFFFF
            base = a & ~_PAGE_MASK
            _, taint_page, offset = self._page(a)
            chunk = min(remaining, PAGE_SIZE - offset)
            if tainted:
                cow = self._cow
                if cow is not None and base not in cow.shadow_dirty:
                    cow.shadow_dirty.add(base)
                    if base not in cow.fresh:
                        cow.shadow_baseline[base] = bytes(taint_page)
                taint_page[offset : offset + chunk] = b"\x01" * chunk
                self._tainted_pages.add(base)
            elif base in self._tainted_pages:
                cow = self._cow
                if cow is not None and base not in cow.shadow_dirty:
                    cow.shadow_dirty.add(base)
                    if base not in cow.fresh:
                        cow.shadow_baseline[base] = bytes(taint_page)
                taint_page[offset : offset + chunk] = bytes(chunk)
            cursor += chunk
            remaining -= chunk

    def count_tainted(self, addr: int, length: int) -> int:
        """Number of tainted bytes in a span (page-chunked ``count``)."""
        total = 0
        cursor = addr
        remaining = length
        while remaining > 0:
            a = cursor & 0xFFFFFFFF
            _, taint, offset = self._page(a)
            chunk = min(remaining, PAGE_SIZE - offset)
            if (a & ~_PAGE_MASK) in self._tainted_pages:
                total += taint.count(1, offset, offset + chunk)
            cursor += chunk
            remaining -= chunk
        return total
