"""Register file extended with per-byte taintedness bits.

"Corresponding to the one-bit extension to each memory byte, the processor
registers are also extended to include one taintedness bit for each byte"
(section 4.2).  Each 32-bit register therefore carries a 4-bit taint mask.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instructions import REGISTER_NAMES
from ..taint.bits import WORD_TAINTED
from ..taint.plane import TaintPlane

_MASK32 = 0xFFFFFFFF


class RegisterFile:
    """32 general-purpose registers plus HI/LO, each with a taint mask.

    Register 0 is hardwired to (0, clean); writes to it are discarded, as on
    MIPS.  The 32 GPR taint masks are owned by a
    :class:`~repro.taint.plane.TaintPlane` (``self.taints is
    plane.reg_taints``), which snapshots them together with the rest of the
    shadow state; the HI/LO taint masks are scalars that ride with the
    HI/LO values here.
    """

    __slots__ = ("plane", "values", "taints", "hi", "lo", "hi_taint", "lo_taint")

    def __init__(self, plane: Optional[TaintPlane] = None) -> None:
        if plane is None:
            plane = TaintPlane()
        self.plane = plane
        self.values: List[int] = [0] * 32
        # Identity-shared with the plane (and with every executor closure
        # that captured it at bind time).
        self.taints: List[int] = plane.reg_taints
        self.hi = 0
        self.lo = 0
        self.hi_taint = 0
        self.lo_taint = 0

    def read(self, number: int) -> Tuple[int, int]:
        """Return ``(value, taint_mask)`` of a register."""
        return self.values[number], self.taints[number]

    def write(self, number: int, value: int, taint_mask: int = 0) -> None:
        """Write a register; register 0 stays hardwired to clean zero."""
        if number == 0:
            return
        self.values[number] = value & _MASK32
        self.taints[number] = taint_mask & WORD_TAINTED

    def value(self, number: int) -> int:
        return self.values[number]

    def taint(self, number: int) -> int:
        return self.taints[number]

    def set_taint(self, number: int, taint_mask: int) -> None:
        """Overwrite only the taint mask (used by the compare-untaint rule)."""
        if number == 0:
            return
        self.taints[number] = taint_mask & WORD_TAINTED

    def snapshot(self) -> Tuple:
        """Immutable copy of the architectural register state.

        The 32 GPR taint masks are *not* captured here -- the owning
        plane's ``snapshot()`` covers them (once, next to the memory taint
        pages and label sidecars).
        """
        return (
            tuple(self.values),
            self.hi,
            self.lo,
            self.hi_taint,
            self.lo_taint,
        )

    def restore(self, snapshot: Tuple) -> None:
        """Roll the register file back to a snapshot, in place.

        In place because the executor bindings capture the ``values`` and
        ``taints`` lists themselves; rollback must not replace them.  GPR
        taint masks are restored by ``plane.restore()``.
        """
        values, hi, lo, hi_taint, lo_taint = snapshot
        self.values[:] = values
        self.hi = hi
        self.lo = lo
        self.hi_taint = hi_taint
        self.lo_taint = lo_taint

    def tainted_registers(self) -> List[int]:
        """Register numbers currently holding any tainted byte."""
        return [n for n in range(32) if self.taints[n]]

    def dump(self) -> str:
        """Readable register dump for diagnostics."""
        rows = []
        for n in range(32):
            mark = "*" if self.taints[n] else " "
            rows.append(
                f"${REGISTER_NAMES[n]:>4}=({n:2}) {self.values[n]:08x}{mark}"
            )
        return "\n".join(
            "  ".join(rows[i : i + 4]) for i in range(0, 32, 4)
        )
