"""Address-space layout of a simulated process.

The layout mirrors SimpleScalar/MIPS conventions, which is also why the
addresses appearing in the paper's attack transcripts look the way they do:
the WU-FTPD uid word lives at ``0x1002bc20`` (static data segment near
``0x10000000``) and the GHTTPD attack pointer at ``0x7fff3e94`` (stack under
``0x7fff8000``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base of the text (code) segment.
TEXT_BASE = 0x00400000

#: Base of the static data segment.
DATA_BASE = 0x10000000

#: Initial stack pointer; the stack grows toward lower addresses.
STACK_TOP = 0x7FFF8000

#: Maximum stack size in bytes (for bounds diagnostics only).
STACK_LIMIT = 1 << 20

#: Size of a simulated memory page.
PAGE_SIZE = 4096

#: Word size in bytes.
WORD = 4


@dataclass
class AddressSpace:
    """Segment bookkeeping for one process image."""

    text_base: int = TEXT_BASE
    text_end: int = TEXT_BASE
    data_base: int = DATA_BASE
    brk: int = DATA_BASE          # heap break, grows upward from data end
    stack_top: int = STACK_TOP

    def in_text(self, addr: int) -> bool:
        return self.text_base <= addr < self.text_end

    def in_data_or_heap(self, addr: int) -> bool:
        return self.data_base <= addr < self.brk

    def in_stack(self, addr: int) -> bool:
        return self.stack_top - STACK_LIMIT <= addr < self.stack_top

    def segment_of(self, addr: int) -> str:
        """Human-readable segment name for diagnostics."""
        if self.in_text(addr):
            return "text"
        if self.in_data_or_heap(addr):
            return "data/heap"
        if self.in_stack(addr):
            return "stack"
        return "unmapped"
