"""Extended memory model: tainted RAM, registers, caches, address layout."""

from .cache import Cache, CacheHierarchy, CacheStats
from .layout import (
    AddressSpace,
    DATA_BASE,
    PAGE_SIZE,
    STACK_TOP,
    TEXT_BASE,
    WORD,
)
from .registers import RegisterFile
from .tainted_memory import MemoryFault, TaintedMemory

__all__ = [
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "AddressSpace",
    "DATA_BASE",
    "PAGE_SIZE",
    "STACK_TOP",
    "TEXT_BASE",
    "WORD",
    "RegisterFile",
    "MemoryFault",
    "TaintedMemory",
]
