"""Set-associative write-back caches that carry taintedness bits.

Section 4.1: "L2 and L1 caches and data storage within the processor
(registers and buffers) are also extended with the additional taintedness
bits."  Each cache line stores its data bytes *and* their shadow taint bits;
write-backs move both together, so taint survives eviction and refill just
like data does.

The caches are functional (they really hold the data), which lets the test
suite assert that a tainted byte written through L1, evicted to L2, written
back to RAM and re-fetched still carries its taint bit.

Provenance labels (the taint plane's label mode) are deliberately *not*
cached: cache lines carry only the 1-bit shadow state, while the
:class:`~repro.taint.plane.TaintPlane` keeps its label sidecar keyed by
physical address and updates it eagerly at store/copy-in time.  The
sidecar therefore stays coherent across eviction/refill without the lines
knowing about labels -- label reads are gated on the taint *mask returned
by the access*, which is authoritative even when RAM's taint pages lag a
dirty line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..taint.bits import TaintVector
from .tainted_memory import TaintedMemory


@dataclass
class CacheStats:
    """Hit/miss/write-back counters for one cache level."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Line:
    """One cache line: tag + data + per-byte taint + state bits."""

    __slots__ = ("tag", "data", "taint", "valid", "dirty", "lru")

    def __init__(self, line_size: int) -> None:
        self.tag = 0
        self.data = bytearray(line_size)
        self.taint = bytearray(line_size)
        self.valid = False
        self.dirty = False
        self.lru = 0


class Cache:
    """A single set-associative write-back, write-allocate cache level."""

    def __init__(
        self,
        name: str,
        size: int = 16 * 1024,
        line_size: int = 32,
        associativity: int = 2,
        backing: Optional["Cache"] = None,
        memory: Optional[TaintedMemory] = None,
    ) -> None:
        if size % (line_size * associativity):
            raise ValueError("cache geometry does not divide evenly")
        if backing is None and memory is None:
            raise ValueError("cache needs a backing cache or memory")
        self.name = name
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = size // (line_size * associativity)
        self.backing = backing
        self.memory = memory
        self.stats = CacheStats()
        self._sets: List[List[_Line]] = [
            [_Line(line_size) for _ in range(associativity)]
            for _ in range(self.num_sets)
        ]
        self._clock = 0

    # -- geometry helpers --------------------------------------------------

    def _locate(self, addr: int) -> Tuple[int, int, int]:
        offset = addr % self.line_size
        line_addr = addr - offset
        set_index = (line_addr // self.line_size) % self.num_sets
        tag = line_addr // (self.line_size * self.num_sets)
        return set_index, tag, offset

    def _line_base(self, set_index: int, tag: int) -> int:
        return (tag * self.num_sets + set_index) * self.line_size

    # -- backing-store plumbing --------------------------------------------

    def _fill_from_backing(self, base: int, line: _Line) -> None:
        if self.backing is not None:
            data, taint = self.backing.read_line(base, self.line_size)
        else:
            assert self.memory is not None
            data = bytearray(self.memory.read_bytes(base, self.line_size))
            taint = bytearray(
                1 if flag else 0
                for flag in self.memory.read_taint(base, self.line_size)
            )
        line.data[:] = data
        line.taint[:] = taint

    def _writeback(self, set_index: int, line: _Line) -> None:
        base = self._line_base(set_index, line.tag)
        self.stats.writebacks += 1
        if self.backing is not None:
            self.backing.write_line(base, line.data, line.taint)
        else:
            assert self.memory is not None
            self.memory.write_bytes(
                base,
                bytes(line.data),
                TaintVector.from_flags([bool(b) for b in line.taint]),
            )

    def _find(self, addr: int) -> Tuple[int, _Line]:
        """Find (or fetch) the line holding ``addr``; returns (offset, line)."""
        set_index, tag, offset = self._locate(addr)
        self._clock += 1
        ways = self._sets[set_index]
        for line in ways:
            if line.valid and line.tag == tag:
                self.stats.hits += 1
                line.lru = self._clock
                return offset, line
        self.stats.misses += 1
        victim = min(ways, key=lambda entry: (entry.valid, entry.lru))
        if victim.valid and victim.dirty:
            self._writeback(set_index, victim)
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        victim.lru = self._clock
        self._fill_from_backing(self._line_base(set_index, tag), victim)
        return offset, victim

    # -- public access API ---------------------------------------------------

    def read(self, addr: int, size: int) -> Tuple[int, int]:
        """Read up to ``size`` bytes (must not straddle a line boundary)."""
        offset, line = self._find(addr)
        if offset + size > self.line_size:
            raise ValueError("access straddles a cache line")
        value = int.from_bytes(line.data[offset : offset + size], "little")
        mask = 0
        for i in range(size):
            if line.taint[offset + i]:
                mask |= 1 << i
        return value, mask

    def write(self, addr: int, size: int, value: int, taint_mask: int = 0) -> None:
        """Write through this level (write-back, write-allocate)."""
        offset, line = self._find(addr)
        if offset + size > self.line_size:
            raise ValueError("access straddles a cache line")
        line.data[offset : offset + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")
        for i in range(size):
            line.taint[offset + i] = 1 if taint_mask >> i & 1 else 0
        line.dirty = True

    def read_line(self, base: int, length: int) -> Tuple[bytearray, bytearray]:
        """Line-granularity read used by an upper cache level on refill."""
        offset, line = self._find(base)
        return (
            bytearray(line.data[offset : offset + length]),
            bytearray(line.taint[offset : offset + length]),
        )

    def write_line(self, base: int, data: bytearray, taint: bytearray) -> None:
        """Line-granularity write used by an upper cache level on writeback."""
        offset, line = self._find(base)
        line.data[offset : offset + len(data)] = data
        line.taint[offset : offset + len(taint)] = taint
        line.dirty = True

    def flush(self) -> None:
        """Write every dirty line back to the backing store."""
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid and line.dirty:
                    self._writeback(set_index, line)
                    line.dirty = False

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> tuple:
        """Copy-out of every line (tag/data/taint/state) plus counters."""
        lines = tuple(
            tuple(
                (line.tag, bytes(line.data), bytes(line.taint),
                 line.valid, line.dirty, line.lru)
                for line in ways
            )
            for ways in self._sets
        )
        stats = (self.stats.hits, self.stats.misses, self.stats.writebacks)
        return lines, stats, self._clock

    def restore(self, snapshot: tuple) -> None:
        """Roll this cache level back to a snapshot, in place."""
        lines, stats, clock = snapshot
        for ways, saved_ways in zip(self._sets, lines):
            for line, saved in zip(ways, saved_ways):
                tag, data, taint, valid, dirty, lru = saved
                line.tag = tag
                line.data[:] = data
                line.taint[:] = taint
                line.valid = valid
                line.dirty = dirty
                line.lru = lru
        self.stats.hits, self.stats.misses, self.stats.writebacks = stats
        self._clock = clock


class CacheHierarchy:
    """An L1 + L2 hierarchy in front of :class:`TaintedMemory`.

    Presents the same ``read``/``write`` interface as raw memory, so the
    simulator can route data accesses through it when cache modelling is
    requested.
    """

    def __init__(
        self,
        memory: TaintedMemory,
        l1_size: int = 16 * 1024,
        l2_size: int = 256 * 1024,
        line_size: int = 32,
    ) -> None:
        self.memory = memory
        self.l2 = Cache(
            "L2", size=l2_size, line_size=line_size, associativity=4,
            memory=memory,
        )
        self.l1 = Cache(
            "L1", size=l1_size, line_size=line_size, associativity=2,
            backing=self.l2,
        )

    def read(self, addr: int, size: int) -> Tuple[int, int]:
        if addr % self.l1.line_size + size > self.l1.line_size:
            # Rare unaligned straddle: bypass caches.
            return self.memory.read(addr, size)
        return self.l1.read(addr, size)

    def write(self, addr: int, size: int, value: int, taint_mask: int = 0) -> None:
        if addr % self.l1.line_size + size > self.l1.line_size:
            self.memory.write(addr, size, value, taint_mask)
            return
        self.l1.write(addr, size, value, taint_mask)

    def flush(self) -> None:
        """Flush both levels so RAM reflects all cached state."""
        self.l1.flush()
        self.l2.flush()

    def snapshot(self) -> tuple:
        """Copy-out of both levels (line contents, taint, LRU, counters)."""
        return self.l1.snapshot(), self.l2.snapshot()

    def restore(self, snapshot: tuple) -> None:
        """Roll both levels back to a snapshot, in place."""
        l1, l2 = snapshot
        self.l1.restore(l1)
        self.l2.restore(l2)
