"""Copy-on-write capture state shared by memory, taint plane, and labels.

A :class:`CowCapture` is the mutable heart of a delta checkpoint
(:meth:`~repro.cpu.machine.MachineState.snapshot_cow`).  Instead of
copying every materialized page at capture time, the capture starts
*empty* and the memory hot paths fill it lazily:

* the first mutation of a page after capture copies that page's
  pre-mutation content into the baseline as an immutable ``bytes``
  object (copy-on-write) and records the page in the dirty set;
* pages materialized after capture land in :attr:`fresh` and are simply
  dropped on restore;
* everything page-sized that did *not* change is never copied at all.

Restore is then O(dirty + fresh): rewrite the dirty pages from their
baselines, drop the fresh ones, and reinstall the eagerly captured
summaries (clean-page set, register taints, label sidecar, label-table
high-water marks).  The baseline ``bytes`` objects are shared by
reference across any number of restores -- nobody ever mutates them, the
restore path only copies *out* of them into the live ``bytearray`` pages.

Ownership rules (also documented in DESIGN.md section 4c):

* exactly one capture is *active* per :class:`TaintedMemory` at a time
  (``memory._cow``); the memory/plane mutation paths feed only the
  active capture;
* displacing a capture -- a second ``snapshot_cow()``, or any legacy
  full-copy ``restore()`` -- first *completes* it: every page it has not
  yet COW'd still holds its capture-time content (nothing dirtied it),
  so completion snapshots the remainder and the capture degrades to an
  ordinary full snapshot that restores through the legacy path forever;
* a completed capture's label-table state is rebuilt by truncating the
  live append-only table at the captured high-water marks.  Memoization
  caches rebuilt this way may contain entries that were only *observed*
  after capture; they cache a pure function, so semantics are identical.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

__all__ = ["CowCapture"]

_PAGE_SHIFT = 12  # PAGE_SIZE == 4096 (repro.mem.layout)
_PAGE_MASK = (1 << _PAGE_SHIFT) - 1


class CowCapture:
    """Delta-checkpoint state for one (memory, plane) pair.

    The lazily filled parts (:attr:`data_baseline`,
    :attr:`shadow_baseline`, the dirty/fresh sets) are written by the
    :class:`~repro.mem.tainted_memory.TaintedMemory` hot paths; the
    eager parts (clean-page summary, register taints, label sidecar
    baseline, label-table high-water marks) are filled once at capture
    by :meth:`~repro.taint.plane.TaintPlane.begin_cow`.
    """

    __slots__ = (
        "data_baseline",
        "shadow_baseline",
        "data_dirty",
        "shadow_dirty",
        "fresh",
        "label_dirty",
        "tainted_bytes_written",
        "tainted_summary",
        "reg_taints",
        "labels_by_page",
        "reg_labels",
        "hilo_label",
        "labels_hwm",
        "sets_hwm",
        "full_memory",
        "full_taint",
    )

    def __init__(self) -> None:
        #: page base -> immutable capture-time content, COW-filled on the
        #: first post-capture mutation of that page.
        self.data_baseline: Dict[int, bytes] = {}
        self.shadow_baseline: Dict[int, bytes] = {}
        #: page bases mutated since capture (data / shadow planes).
        self.data_dirty: Set[int] = set()
        self.shadow_dirty: Set[int] = set()
        #: page bases materialized since capture (dropped on restore).
        self.fresh: Set[int] = set()
        #: page bases whose label sidecar entries changed since capture
        #: (label mode only; tracked by the plane's label mutators).
        self.label_dirty: Set[int] = set()
        self.tainted_bytes_written: int = 0
        #: exact clean-page summary as of capture (see TaintPlane).
        self.tainted_summary: FrozenSet[int] = frozenset()
        self.reg_taints: Tuple[int, ...] = ()
        #: label mode only: capture-time ``mem_labels`` grouped by page
        #: base as ``{base: ((addr, sid), ...)}`` so restore can rewrite
        #: exactly the dirtied pages' entries.
        self.labels_by_page: Optional[Dict[int, Tuple[Tuple[int, int], ...]]] = None
        self.reg_labels: Tuple[int, ...] = ()
        self.hilo_label: int = 0
        #: label-table high-water marks: entries past these are post-
        #: capture allocations, truncated away on restore.
        self.labels_hwm: int = 0
        self.sets_hwm: int = 0
        #: filled by :meth:`complete` when the capture is displaced:
        #: legacy-shape full snapshots for the memory and taint domains.
        self.full_memory: Optional[Tuple[Dict[int, bytes], int]] = None
        self.full_taint: Optional[Tuple] = None

    @property
    def completed(self) -> bool:
        return self.full_memory is not None

    def clear_dirty(self) -> None:
        """Reset the delta-tracking sets after an in-place delta restore
        (the machine is back at capture state, so nothing is dirty)."""
        self.data_dirty.clear()
        self.shadow_dirty.clear()
        self.fresh.clear()
        self.label_dirty.clear()

    # ------------------------------------------------------------------
    # completion: degrade to a full snapshot when displaced
    # ------------------------------------------------------------------

    def complete(self, memory, plane) -> None:
        """Snapshot everything not yet COW'd (idempotent).

        Valid whenever this capture is still the active one: a page
        absent from the baseline was never dirtied, so its *current*
        content equals its capture-time content.  After completion the
        capture restores through the legacy full-copy path.
        """
        if self.full_memory is not None:
            return
        fresh = self.fresh
        data: Dict[int, bytes] = {}
        for base, page in memory._pages.items():
            if base in fresh:
                continue
            frozen = self.data_baseline.get(base)
            data[base] = _freeze(page) if frozen is None else frozen
        shadow: Dict[int, bytes] = {}
        for base, page in plane.mem_taint.items():
            if base in fresh:
                continue
            frozen = self.shadow_baseline.get(base)
            shadow[base] = _freeze(page) if frozen is None else frozen
        if plane.table is None:
            label_state = None
        else:
            mem_labels: Dict[int, int] = {}
            for entries in (self.labels_by_page or {}).values():
                for addr, sid in entries:
                    mem_labels[addr] = sid
            label_state = (
                mem_labels,
                self.reg_labels,
                self.hilo_label,
                plane.table.truncated_snapshot(self.labels_hwm, self.sets_hwm),
            )
        self.full_memory = (data, self.tainted_bytes_written)
        self.full_taint = (plane.mode, shadow, self.reg_taints, label_state)


def _freeze(page: bytearray) -> bytes:
    # bytes(page) of an all-zero page is still a fresh 4 KiB object; a
    # completed capture is cold-path, so no interning is attempted.
    return bytes(page)
