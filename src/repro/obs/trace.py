"""Structured trace recording over the event bus (bounded ring or JSONL).

A :class:`TraceRecorder` subscribes to a chosen subset of the machine's
typed events (:mod:`repro.core.events`) and turns each into one flat,
JSON-ready record.  Two sinks, usable together:

* a **bounded ring buffer** (``deque(maxlen=limit)``) -- always on, so a
  crashed or detected run keeps its last ``limit`` events for post-mortems
  without unbounded memory growth;
* a **streaming JSONL file** -- one record per line, written as events
  fire, so arbitrarily long runs trace to disk in constant memory.

Trace record schema (one JSON object per line / ring slot)::

    {"seq": <int>,            # 1-based emission order within this recorder
     "event": <type name>,    # e.g. "TaintPropagated"
     ...payload fields...}    # per-type, see _RECORD_FIELDS below

Every record of a given event type carries the same keys, so a saved
trace is mechanically filterable (the ``python -m repro trace`` subcommand
renders, filters, and summarizes these files).

``InstructionRetired`` is *not* traced by default -- it fires once per
dynamic instruction and dominates any trace; opt in explicitly
(``events="all"`` or include it in the event list) when you want a full
instruction trace.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from ..core.events import (
    EVENT_TYPES,
    EventBus,
    FaultInjected,
    InstructionRetired,
    MemoryFaulted,
    SyscallEnter,
    SyscallExit,
    TaintPropagated,
    TaintedDereference,
    TrialCompleted,
)

__all__ = [
    "DEFAULT_TRACE_EVENTS",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "event_to_record",
    "read_trace",
    "render_trace",
    "resolve_event_types",
    "summarize_trace",
]

#: Bumped when a record's keys change shape.
TRACE_SCHEMA_VERSION = 1

#: Event-type name -> class, for resolving CLI/Session selections.
EVENT_BY_NAME: Dict[str, type] = {cls.__name__: cls for cls in EVENT_TYPES}

#: Traced by default: everything except the per-instruction firehose.
DEFAULT_TRACE_EVENTS = tuple(
    cls for cls in EVENT_TYPES if cls is not InstructionRetired
)


def resolve_event_types(
    events: Union[None, str, Sequence[Union[str, type]]],
) -> tuple:
    """Normalize an event selection into a tuple of event classes.

    Accepts ``None`` (the default set), the string ``"all"``, or a
    sequence of class names / classes (names matched case-insensitively).
    """
    if events is None:
        return DEFAULT_TRACE_EVENTS
    if isinstance(events, str):
        if events.lower() == "all":
            return EVENT_TYPES
        events = [part.strip() for part in events.split(",") if part.strip()]
    resolved = []
    lowered = {name.lower(): cls for name, cls in EVENT_BY_NAME.items()}
    for item in events:
        if isinstance(item, type):
            if item not in EVENT_TYPES:
                raise ValueError(f"unknown event type {item!r}")
            resolved.append(item)
            continue
        cls = lowered.get(str(item).lower())
        if cls is None:
            raise ValueError(
                f"unknown event name {item!r}; choose from "
                f"{sorted(EVENT_BY_NAME)} or 'all'"
            )
        resolved.append(cls)
    return tuple(dict.fromkeys(resolved))  # dedupe, keep order


def _instr_text(instr: Any) -> str:
    text = getattr(instr, "text", "") or getattr(instr, "name", "")
    return str(text)


def event_to_record(event: Any, seq: int) -> dict:
    """Flatten one typed event into the JSON-ready trace record."""
    record: dict = {"seq": seq, "event": type(event).__name__}
    if isinstance(event, InstructionRetired):
        record.update(pc=event.pc, index=event.index,
                      text=_instr_text(event.instr))
    elif isinstance(event, TaintPropagated):
        record.update(pc=event.pc, dest_kind=event.dest_kind,
                      dest=event.dest, taint=event.taint,
                      text=_instr_text(event.instr))
    elif isinstance(event, TaintedDereference):
        alert = event.alert
        record.update(
            pc=event.pc,
            kind=event.kind,
            pointer=getattr(alert, "pointer_value", None),
            taint=getattr(alert, "taint_mask", None),
            alert=str(alert),
        )
        provenance = getattr(alert, "provenance", ())
        if provenance:
            # Label mode only: who tainted the dereferenced pointer.
            record["provenance"] = [
                label.to_dict() for label in provenance
            ]
    elif isinstance(event, SyscallEnter):
        record.update(pc=event.pc, number=event.number)
    elif isinstance(event, SyscallExit):
        record.update(pc=event.pc, number=event.number, result=event.result)
    elif isinstance(event, MemoryFaulted):
        record.update(pc=event.pc, message=event.message)
    elif isinstance(event, FaultInjected):
        record.update(pc=event.pc, kind=event.kind, detail=event.detail)
    elif isinstance(event, TrialCompleted):
        record.update(index=event.index, outcome=event.outcome,
                      detail=event.detail)
    else:  # pragma: no cover - future event types degrade gracefully
        record.update(repr=repr(event))
    return record


class TraceRecorder:
    """Subscribes to a bus, keeps a bounded ring, optionally streams JSONL.

    Args:
        events: event selection (see :func:`resolve_event_types`).
        limit: ring-buffer depth (the last ``limit`` records survive).
        stream: an open text file to write one JSON line per record, or
            None for ring-only recording.
    """

    def __init__(
        self,
        events: Union[None, str, Sequence] = None,
        limit: int = 65536,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.event_types = resolve_event_types(events)
        self.ring: deque = deque(maxlen=limit)
        self.stream = stream
        self.seq = 0
        self.counts: Dict[str, int] = {}
        self._bus: Optional[EventBus] = None

    # -- wiring ----------------------------------------------------------

    def attach(self, bus: EventBus) -> "TraceRecorder":
        if self._bus is not None:
            raise RuntimeError("recorder already attached")
        self._bus = bus
        for event_type in self.event_types:
            bus.subscribe(event_type, self.record)
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for event_type in self.event_types:
            self._bus.unsubscribe(event_type, self.record)
        self._bus = None

    # -- recording -------------------------------------------------------

    def record(self, event: Any) -> None:
        self.seq += 1
        record = event_to_record(event, self.seq)
        name = record["event"]
        self.counts[name] = self.counts.get(name, 0) + 1
        self.ring.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record, sort_keys=True) + "\n")

    @property
    def records(self) -> List[dict]:
        """The ring's contents, oldest first."""
        return list(self.ring)

    def write_jsonl(self, path: str) -> None:
        """Dump the ring to ``path`` (one record per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.ring:
                handle.write(json.dumps(record, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# saved-trace consumption (the `repro trace` subcommand)
# ---------------------------------------------------------------------------

def read_trace(path: str) -> Iterator[dict]:
    """Yield records from a JSONL trace file (blank lines skipped)."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON trace record: {exc}"
                ) from None
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(
                    f"{path}:{lineno}: record missing 'event' field"
                )
            yield record


def summarize_trace(records: Iterable[dict]) -> Dict[str, int]:
    """Per-event-type record counts."""
    counts: Dict[str, int] = {}
    for record in records:
        name = record.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
    return counts


def _format_record(record: dict) -> str:
    head = f"{record.get('seq', 0):>8}  {record['event']:<18}"
    parts = []
    for key in sorted(record):
        if key in ("seq", "event"):
            continue
        value = record[key]
        if key in ("pc", "pointer", "dest") and isinstance(value, int):
            value = f"{value:#010x}"
        parts.append(f"{key}={value}")
    return head + " " + " ".join(parts)


def render_trace(
    records: Iterable[dict],
    events: Union[None, str, Sequence] = "all",
    pc: Optional[int] = None,
    limit: Optional[int] = None,
) -> str:
    """Render records as aligned text, optionally filtered.

    ``events`` filters by type (same grammar as the recorder), ``pc``
    keeps records whose pc matches, ``limit`` keeps the *last* N after
    filtering (mirroring the ring semantics).
    """
    wanted = {cls.__name__ for cls in resolve_event_types(events)}
    kept = [
        r for r in records
        if r.get("event") in wanted
        and (pc is None or r.get("pc") == pc)
    ]
    if limit is not None:
        kept = kept[-limit:]
    if not kept:
        return "(no matching trace records)"
    return "\n".join(_format_record(r) for r in kept)
