"""Observability layer: metrics, structured tracing, profiling hooks.

Everything the paper claims is a *measurement* -- detection points
(Table 2), false positives on benign workloads (Table 3), pipeline
overhead (section 5.4) -- so this package turns every run into
inspectable telemetry over the typed event bus:

* :mod:`repro.obs.metrics` -- counters, gauges, fixed-bucket histograms,
  and explicitly scoped timers in a :class:`MetricsRegistry`;
* :mod:`repro.obs.trace` -- a :class:`TraceRecorder` that flattens bus
  events into bounded-ring or streaming-JSONL trace records, plus the
  readers behind ``python -m repro trace``;
* :mod:`repro.obs.profile` -- the :class:`Observer` that wires a machine
  into a registry (live event handlers + post-run stats harvest).

The engines keep their zero-subscriber fast path: with no registry and
no trace attached, nothing subscribes and no event object is allocated
(``benchmarks/bench_observability.py`` holds the proof).
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKET_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .profile import Observer
from .trace import (
    DEFAULT_TRACE_EVENTS,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    event_to_record,
    read_trace,
    render_trace,
    resolve_event_types,
    summarize_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_EDGES",
    "DEFAULT_TRACE_EVENTS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "TRACE_SCHEMA_VERSION",
    "Timer",
    "TraceRecorder",
    "event_to_record",
    "read_trace",
    "render_trace",
    "resolve_event_types",
    "summarize_trace",
]
