"""Profiling hooks: event-bus subscriptions + post-run counter harvest.

The :class:`Observer` is the bridge between one machine and a
:class:`~repro.obs.metrics.MetricsRegistry`.  It has two halves:

* **Live subscriptions** (``attach``): handlers on the taint/syscall/
  fault/trial events that fold each occurrence into a counter or
  histogram as it fires.  ``InstructionRetired`` is deliberately *not*
  subscribed -- per-opcode retire counts already exist in
  ``ExecutionStats.by_mnemonic``, so the hot path stays on the engines'
  zero-subscriber fast path even with metrics enabled.
* **Post-run harvest** (``harvest``): folds the machine's accumulated
  statistics -- instruction mix, taint activity, cache hit/miss, pipeline
  cycle/stall breakdown -- into the registry after the run, at zero
  per-instruction cost.

Metric names follow the taxonomy documented in
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

from typing import Optional

from ..core.events import (
    FaultInjected,
    MemoryFaulted,
    SyscallEnter,
    SyscallExit,
    TaintPropagated,
    TaintedDereference,
    TrialCompleted,
)
from .metrics import MetricsRegistry

__all__ = ["Observer"]

#: Bucket edges for the inter-syscall gap histogram (instructions between
#: consecutive syscall entries): powers of two up to 2^20.
_GAP_EDGES = tuple(1 << i for i in range(21))


class Observer:
    """Wire one machine's event bus into a metrics registry.

    Usage::

        registry = MetricsRegistry()
        observer = Observer(registry).attach(sim)
        ... run ...
        observer.harvest(sim, pipeline)   # fold post-run stats
        observer.detach()
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._sim = None
        self._subscriptions = []
        self._last_syscall_instr: Optional[int] = None

    # ------------------------------------------------------------------
    # live subscriptions
    # ------------------------------------------------------------------

    def attach(self, sim) -> "Observer":
        """Subscribe metric handlers to ``sim``'s event bus."""
        if self._sim is not None:
            raise RuntimeError("observer already attached")
        self._sim = sim
        reg = self.registry
        bus = sim.events

        taint_reg = reg.counter("taint.flow.reg")
        taint_mem = reg.counter("taint.flow.mem")
        taint_hilo = reg.counter("taint.flow.hilo")

        def on_taint(event: TaintPropagated) -> None:
            if event.dest_kind == "reg":
                taint_reg.inc()
            elif event.dest_kind == "mem":
                taint_mem.inc()
            else:
                taint_hilo.inc()

        def on_deref(event: TaintedDereference) -> None:
            reg.counter(f"detector.alert.{event.kind}").inc()

        gap_hist = reg.histogram("syscall.gap_instructions", _GAP_EDGES)
        syscalls = reg.counter("syscall.count")

        def on_syscall_enter(event: SyscallEnter) -> None:
            syscalls.inc()
            reg.counter(f"syscall.num.{event.number}").inc()
            instr = self._sim.stats.instructions
            if self._last_syscall_instr is not None:
                gap = instr - self._last_syscall_instr
                # A rollback (fault-campaign recovery) rewinds the
                # instruction counter; skip the cross-trial gap.
                if gap >= 0:
                    gap_hist.observe(gap)
            self._last_syscall_instr = instr

        errors = reg.counter("syscall.errors")

        def on_syscall_exit(event: SyscallExit) -> None:
            if event.result & 0xFFFFFFFF == 0xFFFFFFFF:
                errors.inc()

        mem_faults = reg.counter("machine.faults")

        def on_fault(event: MemoryFaulted) -> None:
            mem_faults.inc()

        def on_injected(event: FaultInjected) -> None:
            reg.counter("fault.injected").inc()
            reg.counter(f"fault.injected.{event.kind}").inc()

        def on_trial(event: TrialCompleted) -> None:
            reg.counter("campaign.trials").inc()
            reg.counter(f"campaign.trial.{event.outcome}").inc()

        for event_type, handler in (
            (TaintPropagated, on_taint),
            (TaintedDereference, on_deref),
            (SyscallEnter, on_syscall_enter),
            (SyscallExit, on_syscall_exit),
            (MemoryFaulted, on_fault),
            (FaultInjected, on_injected),
            (TrialCompleted, on_trial),
        ):
            bus.subscribe(event_type, handler)
            self._subscriptions.append((event_type, handler))
        return self

    def detach(self) -> None:
        if self._sim is None:
            return
        bus = self._sim.events
        for event_type, handler in self._subscriptions:
            bus.unsubscribe(event_type, handler)
        self._subscriptions.clear()
        self._sim = None
        self._last_syscall_instr = None

    # ------------------------------------------------------------------
    # post-run harvest
    # ------------------------------------------------------------------

    def harvest(self, sim, pipeline=None) -> MetricsRegistry:
        """Fold a finished machine's statistics into the registry.

        ``pipeline`` is the :class:`repro.cpu.pipeline.Pipeline` driver
        (or its ``PipelineStats``) when the cycle-level engine ran.
        Safe to call once per run; counters accumulate across runs in the
        same registry.
        """
        reg = self.registry
        stats = sim.stats
        for key, value in stats.summary().items():
            reg.counter(f"run.{key}").inc(int(value))
        reg.counter("run.tainted_dereferences").inc(
            stats.tainted_dereferences
        )
        for mnemonic, count in stats.by_mnemonic.items():
            reg.counter(f"opcode.{mnemonic}").inc(count)
        for klass, count in stats.by_class.items():
            reg.counter(f"taintclass.{klass}").inc(count)
        if stats.instructions:
            reg.gauge("run.taint_activity_ratio").set(
                stats.taint_activity_ratio()
            )

        table = getattr(getattr(sim, "plane", None), "table", None)
        if table is not None:
            # Label mode: gauges, not counters -- the table reports its
            # current population, which must not accumulate across
            # harvests of the same machine.
            reg.gauge("taint.labels.allocated").set(table.allocated_labels)
            reg.gauge("taint.labelsets.interned").set(table.interned_sets)

        for detector in getattr(sim, "defenses", ()):
            # Pluggable defenses (repro.defenses): per-detector hook
            # checks and alerts, keyed by registry name.
            prefix = f"defense.{detector.name}"
            reg.counter(f"{prefix}.checks").inc(detector.checks)
            reg.counter(f"{prefix}.alerts").inc(len(detector.alerts))

        caches = getattr(sim, "caches", None)
        if caches is not None:
            for level in (caches.l1, caches.l2):
                prefix = f"cache.{level.name.lower()}"
                reg.counter(f"{prefix}.hits").inc(level.stats.hits)
                reg.counter(f"{prefix}.misses").inc(level.stats.misses)
                reg.counter(f"{prefix}.writebacks").inc(
                    level.stats.writebacks
                )
                reg.gauge(f"{prefix}.hit_rate").set(level.stats.hit_rate)

        superblocks = getattr(sim, "superblocks", None)
        if superblocks is not None and getattr(
            sim, "superblocks_enabled", False
        ):
            info = superblocks.info()
            for key in ("built", "invalidated", "hits"):
                reg.counter(f"superblock.{key}").inc(info[key])
            reg.gauge("superblock.cached").set(info["size"])

        pstats = getattr(pipeline, "pstats", pipeline)
        if pstats is not None:
            reg.counter("pipeline.cycles").inc(pstats.cycles)
            reg.counter("pipeline.retired").inc(pstats.retired)
            reg.counter("pipeline.fetch_stalls").inc(pstats.fetch_stalls)
            reg.counter("pipeline.drain_cycles").inc(pstats.drain_cycles)
            if pstats.retired:
                reg.gauge("pipeline.cpi").set(pstats.cpi)
        return reg
