"""Metrics primitives: counters, gauges, histograms, explicit timers.

The registry is the measurement substrate every harness in this repo
shares: the :class:`~repro.obs.profile.Observer` fills it from the event
bus and post-run statistics, the :class:`repro.api.Session` facade exposes
it per run, and every unified ``--json`` result carries its dump under the
``"metrics"`` key -- so a detection experiment, a fault campaign, and a
throughput benchmark all report through the same metric names.

Design constraints (from the hot-path budget of the execution engines):

* **No wall-clock reads in hot paths.**  Counters and gauges are pure
  integer/float cells; histograms bucket by precomputed edges.  Wall-clock
  time enters only through :class:`Timer`, which reads the clock exactly
  when explicitly started and stopped (whole-run or whole-phase scopes).
* **Get-or-create identity.**  ``registry.counter("x")`` always returns
  the same object, so observers can capture the cell once and call
  ``inc()`` without a dict lookup per event.
* **JSON-ready.**  ``to_dict()`` emits plain dicts of numbers, suitable
  for the unified result schema and the ``BENCH_*.json`` records.

Metric-name taxonomy (dotted, lowercase; the profiler and the engines
agree on these):

=========================  ================================================
``run.*``                  whole-run counters harvested from ExecutionStats
                           (``run.instructions``, ``run.loads``, ...)
``opcode.<mnemonic>``      per-opcode retire counts
``taintclass.<class>``     per-taint-rule-class retire counts
``taint.flow.<dest>``      TaintPropagated events by destination
                           (``reg`` / ``mem`` / ``hilo``)
``taint.labels.*``         label-mode provenance gauges
                           (``taint.labels.allocated`` labels issued,
                           ``taint.labelsets.interned`` distinct sets)
``detector.*``             alerts and tainted-dereference activity
``syscall.*``              per-number counts and inter-syscall gaps
``cache.l1.*/l2.*``        hit/miss/writeback counts when caches are on
``pipeline.*``             cycles and the stall breakdown (pipeline engine)
``fault.*``                fault-injection activity
``campaign.*``             per-outcome trial counts
``experiment.*``           per-artifact timers from the evalx harness
=========================  ================================================
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
]

#: Power-of-two upper bucket edges (1 .. 2^20); an implicit +inf bucket
#: catches everything above.  Suited to instruction-count distributions.
DEFAULT_BUCKET_EDGES: Tuple[int, ...] = tuple(1 << i for i in range(21))


class Counter:
    """A monotonically increasing integer cell."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A set-to-latest value (throughput, ratios, configuration facts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket-edge histogram (no per-observation allocation).

    ``edges`` are inclusive upper bounds of each bucket; one extra
    overflow bucket collects observations above the last edge.  The edge
    list is fixed at construction so hot-path ``observe`` is a bisect
    plus an increment.
    """

    __slots__ = ("name", "edges", "buckets", "count", "total", "min", "max")

    def __init__(
        self, name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES
    ) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be a sorted, non-empty list")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(edges)
        self.buckets: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class Timer:
    """Explicitly scoped wall-clock accumulator.

    The clock is read only inside ``start()``/``stop()`` (or the context
    manager), never implicitly -- timers wrap whole runs or phases, not
    per-instruction work.
    """

    __slots__ = ("name", "count", "seconds", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self._started: Optional[float] = None

    def start(self) -> "Timer":
        self._started = perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} stopped without start")
        elapsed = perf_counter() - self._started
        self._started = None
        self.count += 1
        self.seconds += elapsed
        return elapsed

    def add(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.count += 1
        self.seconds += seconds

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    One registry spans a :class:`repro.api.Session`: successive runs
    accumulate into the same cells, which is what a campaign or a
    multi-workload experiment wants.  Create a fresh registry per run for
    per-run numbers.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- get-or-create accessors ---------------------------------------

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES
    ) -> Histogram:
        return self._get(name, Histogram, edges)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    # -- introspection --------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def counters(self) -> Iterable[Counter]:
        return (m for m in self._metrics.values() if isinstance(m, Counter))

    def absorb(self, dump: dict) -> None:
        """Fold a :meth:`to_dict` dump from another registry into this one.

        The cross-process merge primitive: pool workers harvest into a
        local registry, ship its dump back (plain picklable dicts), and
        the parent absorbs each dump in task order -- counters and timers
        add, gauges keep the last value written, histograms merge
        bucket-wise.  Absorbing worker dumps in a deterministic order
        therefore reproduces the counters a serial run would have.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in dump.get("histograms", {}).items():
            hist = self.histogram(name, data["edges"])
            if list(hist.edges) != list(data["edges"]):
                raise ValueError(
                    f"histogram {name!r} bucket edges differ; cannot merge"
                )
            for i, bucket in enumerate(data["buckets"]):
                hist.buckets[i] += bucket
            hist.count += data["count"]
            hist.total += data["sum"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = data[bound]
                if theirs is not None:
                    ours = getattr(hist, bound)
                    setattr(
                        hist, bound,
                        theirs if ours is None else pick(ours, theirs),
                    )
        for name, data in dump.get("timers", {}).items():
            timer = self.timer(name)
            timer.count += data["count"]
            timer.seconds += data["seconds"]

    def to_dict(self) -> dict:
        """JSON-ready dump, grouped by metric kind, names sorted."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.to_dict()
            elif isinstance(metric, Timer):
                out["timers"][name] = {
                    "count": metric.count,
                    "seconds": metric.seconds,
                }
        return out

    def render(self, title: str = "metrics") -> str:
        """Human-readable dump (the CLI's ``--metrics`` output)."""
        lines = [f"{title}:"]
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"  {name:<40} {metric.value:>14,}")
            elif isinstance(metric, Gauge):
                lines.append(f"  {name:<40} {metric.value:>14.4g}")
            elif isinstance(metric, Histogram):
                lines.append(
                    f"  {name:<40} count={metric.count} "
                    f"mean={metric.mean:.1f} min={metric.min} max={metric.max}"
                )
            elif isinstance(metric, Timer):
                lines.append(
                    f"  {name:<40} {metric.seconds:>12.4f}s "
                    f"(x{metric.count})"
                )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
