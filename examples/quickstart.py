#!/usr/bin/env python3
"""Quickstart: detect a memory-corruption attack in ~20 lines.

We compile a vulnerable C program for the simulated taint-tracking
processor, feed it an overlong input, and watch the pointer-taintedness
detector stop the attack at the exact instruction the paper describes:
the function return (``jr $31``) consuming a tainted return address.

Everything goes through the stable :class:`repro.Session` facade -- one
object picks the policy, the engine, and the observability (metrics /
structured tracing), and every run returns the same result family.

Run:  python examples/quickstart.py
"""

from repro import ExecOptions, Session

VULNERABLE_PROGRAM = r"""
void greet(void) {
    char name[10];
    scan_string(name);          /* scanf("%s", name): no bounds check */
    printf("hello %s!\n", name);
}

int main(void) {
    greet();
    puts("done");
    return 0;
}
"""

BENIGN_INPUT = b"alice\n"
ATTACK_INPUT = b"a" * 24  # rolls over the saved frame pointer + return addr


def main() -> None:
    session = Session(options=ExecOptions(policy="paper", metrics=True))

    print("=== benign input, paper's pointer-taintedness policy ===")
    result = session.run_minic(VULNERABLE_PROGRAM, stdin=BENIGN_INPUT)
    print(f"outcome: {result.describe()}")
    print(f"stdout : {result.stdout!r}")

    print("\n=== attack input, paper's pointer-taintedness policy ===")
    result = session.run_minic(VULNERABLE_PROGRAM, stdin=ATTACK_INPUT)
    print(f"outcome: {result.describe()}")
    assert result.detected
    print(f"alert  : tainted {result.alert.kind} of "
          f"{result.alert.pointer_value:#010x} at `{result.alert.disassembly}`")
    print("(0x61616161 is 'aaaa' -- the attacker's bytes became the "
          "return address)")

    print("\n=== same attack on an unprotected machine ===")
    result = session.run_minic(VULNERABLE_PROGRAM, policy="none",
                               stdin=ATTACK_INPUT)
    print(f"outcome: {result.describe()}")
    print("(control flow left the program: the attack succeeded)")

    print("\n=== same attack under a control-data-only baseline (Minos/SPE) ===")
    result = session.run_minic(VULNERABLE_PROGRAM, policy="control-data",
                               stdin=ATTACK_INPUT)
    print(f"outcome: {result.describe()}")
    print("(this one IS control data, so the baseline also catches it; "
          "run attack_gallery.py to see the non-control-data attacks "
          "only pointer-taintedness stops)")

    print("\n=== what the session measured across those four runs ===")
    counters = session.metrics.to_dict()["counters"]
    print(f"instructions retired : {counters['run.instructions']:,}")
    print(f"dereference checks   : {counters['run.dereference_checks']:,}")
    print(f"alerts raised        : {counters['run.alerts']}")
    print("(pass metrics=True / trace='t.jsonl' to any Session for more)")


if __name__ == "__main__":
    main()
