#!/usr/bin/env python3
"""The Table 2 experiment, end to end: attacking WU-FTPD.

Reproduces the paper's flagship non-control-data attack: a SITE EXEC
format-string exploit that overwrites the logged-in user's uid word at
0x1002bc20 -- no control data touched -- then uploads a backdoored
/etc/passwd.  The script shows:

1. the protected run: the detector stops the server at the ``%n`` store;
2. the unprotected run: privilege escalation and the planted backdoor;
3. a benign session: the same server doing normal FTP work.

Run:  python examples/wuftpd_session.py
"""

from repro.apps.wuftpd import (
    benign_session,
    make_filesystem,
    site_exec_payload,
    uid_address,
    wuftpd_scenario,
)
from repro.core.policy import NullPolicy, PointerTaintPolicy
from repro.evalx.experiments import report_table2
from repro.kernel.network import ScriptedClient
from repro.attacks.replay import run_executable


def main() -> None:
    print(report_table2())

    print("\n--- unprotected machine: the attack in slow motion ---")
    scenario = wuftpd_scenario()
    result = scenario.run_attack(NullPolicy())
    sim, kernel = result.sim, result.kernel
    uid, taint = sim.memory.read(uid_address(), 4)
    print(f"payload sent      : {site_exec_payload()!r}")
    print(f"uid word after    : {uid} (was 1000), taint mask {taint:#x}")
    print(f"kernel events     : {[str(e) for e in kernel.process.events]}")
    print(f"/etc/passwd now   : {kernel.fs.read_file('/etc/passwd').decode()}")
    print("The attacker can now log in as 'alice' with root privileges.")

    print("\n--- benign session under full protection ---")
    benign = run_executable(
        scenario.build(),
        PointerTaintPolicy(),
        clients=[ScriptedClient(benign_session())],
        filesystem=make_filesystem(),
    )
    print(f"outcome: {benign.describe()}")
    print("server transcript:")
    for line in bytes(benign.clients[0].transcript).decode().splitlines():
        print(f"  S: {line}")


if __name__ == "__main__":
    main()
