#!/usr/bin/env python3
"""Table 3: the false-positive study on SPEC-2000-like workloads.

Runs six benign compute workloads (named after the paper's SPEC INT
programs) on the taint-tracking architecture with full input tainting and
reports program size, input bytes, instructions executed, and alerts --
the reproduction target is the all-zero alert column.

Run:  python examples/false_positive_study.py
"""

from repro.evalx.experiments import report_sec54, report_table3


def main() -> None:
    print(report_table3())
    print()
    print("Why zero alerts? Input-derived values flow through these")
    print("programs constantly, but every value used as an address was")
    print("either computed from clean pointers or validated first -- and")
    print("the Table 1 compare rule untaints validated values, exactly as")
    print("on the paper's hardware.")
    print()
    print(report_sec54())


if __name__ == "__main__":
    main()
