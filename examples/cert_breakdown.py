#!/usr/bin/env python3
"""Figure 1: the CERT advisory breakdown that motivates the paper.

Prints the 2000-2003 CERT advisory classification (107 analyzed
advisories), the per-class percentages, and the famous 67%
memory-corruption share, plus an ASCII bar chart of the figure.

Run:  python examples/cert_breakdown.py
"""

from repro.evalx.cert import analyzed_advisories, figure1_rows
from repro.evalx.experiments import report_fig1


def main() -> None:
    print(report_fig1())
    print()
    width = 50
    top = max(count for _, count, _ in figure1_rows())
    for category, count, pct in figure1_rows():
        bar = "#" * max(1, round(width * count / top))
        print(f"{category:>18} |{bar:<{width}} {count:3} ({pct:4.1f}%)")
    print()
    print("sample advisories per class:")
    seen = set()
    for adv in analyzed_advisories():
        if adv.category not in seen:
            seen.add(adv.category)
            print(f"  {adv.category:>18}: {adv.advisory_id} -- {adv.title}")


if __name__ == "__main__":
    main()
