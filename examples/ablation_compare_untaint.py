#!/usr/bin/env python3
"""Ablation: what happens without the compare-untaint rule?

Table 1's compare rule ("untaint every byte in the operands of a compare
instruction") is the paper's application-compatibility concession.  It cuts
both ways:

* WITH the rule: validated input is trusted -> zero false positives on
  benign programs, but the Table 4(A) integer-overflow attack slips through
  (its flawed bound check still untaints the index).
* WITHOUT the rule: Table 4(A) is caught! ...and ordinary bounds-checked
  array indexing in benign programs starts raising false alarms, which is
  why the paper keeps the rule.

This script measures both sides of the trade-off.

Run:  python examples/ablation_compare_untaint.py
"""

from repro.apps.spec import SPEC_WORKLOADS
from repro.apps.synthetic import vuln_a_scenario
from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy


def main() -> None:
    strict = PointerTaintPolicy(untaint_on_compare=False)
    paper = PointerTaintPolicy()

    print("=== Table 4(A) integer-overflow attack ===")
    scenario = vuln_a_scenario()
    with_rule = scenario.run_attack(paper)
    without_rule = scenario.run_attack(strict)
    print(f"  paper policy (compare untaints):   {with_rule.describe()}")
    print(f"  ablated policy (no untainting):    {without_rule.describe()}")
    assert not with_rule.detected and without_rule.detected

    print("\n=== benign workloads under both policies ===")
    print(f"  {'workload':10} {'paper policy':>14} {'ablated policy':>16}")
    false_positives = 0
    for workload in SPEC_WORKLOADS[:4]:
        stdin = workload.make_input()
        ok = run_minic(workload.source, paper, stdin=stdin)
        ablated = run_minic(workload.source, strict, stdin=stdin)
        if ablated.detected:
            false_positives += 1
        print(
            f"  {workload.name:10} {ok.outcome:>14} {ablated.outcome:>16}"
        )
        assert ok.outcome == "exit"

    print(
        f"\nWithout the compare rule, {false_positives} of 4 benign "
        "workloads raise FALSE alarms\n(validated indices stay tainted). "
        "That is the trade-off the paper accepts:\nkeep the rule, accept "
        "the Table 4 false negatives, get zero false positives."
    )


if __name__ == "__main__":
    main()
