#!/usr/bin/env python3
"""The paper's §5.3 extension: annotated never-tainted data.

Table 4(B)'s authentication-flag overflow evades the base architecture
because no pointer is tainted -- the attack just writes tainted bytes over
an integer.  The paper proposes sacrificing some transparency: let the
programmer annotate data that must never become tainted, and alert when it
does.  This example runs the Table 4(B) victim twice -- plain, and with the
flag annotated -- and shows the attack flipping from 'access granted' to a
security alert, while honest logins stay unaffected.

Run:  python examples/annotated_data.py
"""

from repro.apps.synthetic import VULN_B_SOURCE, vuln_b_scenario
from repro.core.detector import SecurityException
from repro.core.policy import PointerTaintPolicy
from repro.cpu.simulator import Simulator
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

ANNOTATED_SOURCE = VULN_B_SOURCE.replace(
    "int vuln_b(void) {",
    "int annotate_range(int *p, int n);\nint vuln_b(void) {",
).replace(
    "do_auth(&auth);",
    "annotate_range(&auth, 4);   /* <-- the programmer's annotation */\n"
    "    do_auth(&auth);",
)

ANNOTATE_ASM = """
.text
annotate_range:
    lw $a0,0($sp)
    lw $a1,4($sp)
    li $v0,90
    syscall
    jr $ra
"""

ATTACK = b"wrongpassword\n" + b"A" * 9 + b"\n"
HONEST = b"secret\nhello\n"


def run_annotated(stdin: bytes):
    exe = build_program(ANNOTATED_SOURCE, extra_asm=ANNOTATE_ASM)
    kernel = Kernel(stdin=stdin)
    kernel._handlers = dict(kernel._handlers)
    kernel._handlers[90] = lambda kern, sim, addr, length, _: (
        sim.watchpoints.add(addr, length, "auth flag"), 0)[1]
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    try:
        sim.run(max_instructions=2_000_000)
        return kernel.process.stdout_text.strip(), None
    except SecurityException as exc:
        return kernel.process.stdout_text.strip(), exc.alert


def main() -> None:
    print("=== base architecture, Table 4(B) attack ===")
    base = vuln_b_scenario().run_attack(PointerTaintPolicy())
    print(f"verdict: {base.describe()}")
    print(f"stdout : {base.stdout.strip()!r}   <- the false negative")

    print("\n=== annotated auth flag, same attack ===")
    stdout, alert = run_annotated(ATTACK)
    print(f"verdict: ALERT {alert}")
    print(f"detail : {alert.detail}")

    print("\n=== annotated auth flag, honest login ===")
    stdout, alert = run_annotated(HONEST)
    print(f"verdict: {'ALERT' if alert else 'clean'}")
    print(f"stdout : {stdout!r}   <- trusted writes to the flag are fine")


if __name__ == "__main__":
    main()
