#!/usr/bin/env python3
"""Attack gallery: every evaluated attack under every detection policy.

Replays the paper's full attack suite -- the three Figure 2 synthetic
attacks, the three Table 4 false-negative scenarios, and the four real-world
network application attacks of section 5.1.2 -- under:

* the paper's pointer-taintedness policy,
* a control-data-only baseline (Minos / Secure Program Execution style),
* an unprotected machine (to show each attack actually succeeds).

Run:  python examples/attack_gallery.py
"""

from repro.core.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.evalx.experiments import all_attack_scenarios, report_coverage_matrix


def main() -> None:
    print("Replaying each attack (details), then the coverage matrix.\n")
    paper = PointerTaintPolicy()
    for scenario in all_attack_scenarios():
        result = scenario.run_attack(paper)
        verdict = (
            f"ALERT at `{result.alert.disassembly}` "
            f"pointer={result.alert.pointer_value:#010x}"
            if result.detected
            else f"undetected ({result.describe()})"
        )
        print(f"[{scenario.category:>16}] {scenario.name:26} {verdict}")
        print(f"{'':19}{scenario.description} -- {scenario.paper_ref}")
    print()
    print(report_coverage_matrix())
    print(
        "\nReading the matrix: pointer-taintedness detects all seven real\n"
        "attacks; the control-flow-integrity baseline catches only the\n"
        "return-address smash; every attack compromises an unprotected\n"
        "machine; and the three Table 4 scenarios evade detection -- the\n"
        "paper's acknowledged false negatives."
    )


if __name__ == "__main__":
    main()
