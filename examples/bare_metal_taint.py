#!/usr/bin/env python3
"""Bare-metal tour: the taint architecture without the C toolchain.

Everything in the paper happens at the ISA level; this example drives the
machine directly with assembly to make each mechanism visible:

1. the SYS_READ taint-initialization boundary (section 4.4),
2. Table 1 propagation through ALU instructions,
3. the compare-untaint rule,
4. the section 4.3 dereference check, on both execution engines.

Run:  python examples/bare_metal_taint.py
"""

from repro.core.detector import SecurityException
from repro.core.policy import PointerTaintPolicy
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel

PROGRAM = r"""
.text
_start:
    # (1) read 4 external bytes -> tainted memory
    li  $v0, 3          # SYS_READ
    li  $a0, 0          # stdin
    la  $a1, buf
    li  $a2, 4
    syscall

    la  $t9, buf
    lw  $t0, 0($t9)     # $t0 <- tainted word "abcd"
    li  $t1, 0x1000     # $t1 <- clean constant

    # (2) Table 1: default OR, shift spread, XOR zero idiom
    add $s0, $t0, $t1   # tainted + clean -> tainted
    sll $s1, $t0, 4     # taint creeps one byte leftward
    xor $s2, $t0, $t0   # compiler zero idiom -> clean

    # (3) compare-untaint: validating a copy clears ITS taint only
    move $s3, $t0
    slti $at, $s3, 100  # "if (x < 100)" -> $s3 untainted

    # (4) dereference the raw tainted word -> security exception
    lw  $s4, 0($t0)

    li  $v0, 1
    li  $a0, 0
    syscall
.data
buf: .space 8
"""


def build_machine(pipelined: bool):
    exe = assemble(PROGRAM)
    kernel = Kernel(stdin=b"abcd")
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    return (Pipeline(sim), sim) if pipelined else (sim, sim)


def show_registers(sim):
    for number, label in ((8, "$t0 raw input word"),
                          (16, "$s0 add result"),
                          (17, "$s1 shifted"),
                          (18, "$s2 xor zero idiom"),
                          (19, "$s3 validated copy")):
        value, taint = sim.regs.read(number)
        print(f"  {label:22} = {value:#010x}  taint={taint:#06b}")


def main() -> None:
    for pipelined in (False, True):
        engine_name = "5-stage pipeline" if pipelined else "functional engine"
        print(f"=== {engine_name} ===")
        engine, sim = build_machine(pipelined)
        try:
            engine.run()
            print("no alert?!")
        except SecurityException as exc:
            print(f"security exception: {exc.alert}")
        show_registers(sim)
        buf = sim.executable.address_of("buf")
        print(f"  memory taint at buf  = "
              f"{sim.memory.count_tainted(buf, 8)}/8 bytes tainted")
        if pipelined:
            stats = engine.pstats
            print(f"  pipeline: {stats.retired} retired in {stats.cycles} "
                  f"cycles (CPI {stats.cpi:.2f}), "
                  f"{stats.drain_cycles} drain cycles before the exception")
        print()


if __name__ == "__main__":
    main()
